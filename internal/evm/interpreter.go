package evm

import (
	"errors"

	"hardtape/internal/keccak"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// run executes the frame's code to completion, returning the output of
// RETURN/REVERT (with ErrExecutionReverted in the latter case).
func (e *EVM) run(f *frame) ([]byte, error) {
	// Stack depth and remaining gas are mirrored in loop locals (kept
	// in registers) so the fast-path opcodes never touch f.gas or the
	// stack header; both are written back before anything that can
	// observe them (execute, the step hook, every return) and reloaded
	// after execute, which mutates them arbitrarily.
	var (
		pc       uint64
		code     = f.code
		codeLen  = uint64(len(code))
		stack    = f.stack
		hookStep = e.hookStep
		ln       = stack.Len()
		gas      = f.gas
	)
	for {
		if pc >= codeLen {
			// Implicit STOP falling off the end of code.
			f.gas = gas
			return nil, nil
		}
		op := OpCode(code[pc])
		hot := &_opHotTable[op]
		// Combined stack bounds check (see opHot). Undefined opcodes
		// pass with zero-value bounds and fall through to execute(),
		// whose default case returns ErrInvalidOpcode.
		if uint(ln)-uint(hot.minStack) > uint(hot.stackSpan) {
			f.gas = gas
			return nil, stackBoundsErr(op, ln)
		}
		var gasBefore uint64
		if hookStep {
			gasBefore = gas
		}
		if g := uint64(hot.gas); gas < g {
			f.gas = gas
			return nil, ErrOutOfGas
		} else {
			gas -= g
		}

		// Dense dispatch on the precomputed class: the frequent
		// stack-shuffling opcodes stay inline and jump straight back
		// to the loop head, skipping the generic ret/done/err
		// plumbing; everything else routes through the execute switch.
		switch hot.class {
		case classPush1:
			// PUSH1 is by far the most frequent opcode; skip the
			// general immediate decoding.
			var v uint64
			if pc+1 < codeLen {
				v = uint64(code[pc+1])
			}
			stack.pushUint64(v)
			ln++
			if hookStep {
				f.gas = gas
				e.stepEvent(f, pc, op, gasBefore)
			}
			pc += 2
			continue

		case classPush:
			n := uint64(op.PushSize())
			end := pc + 1 + n
			if end > codeLen {
				end = codeLen
			}
			v := stack.pushSlot()
			v.SetBytes(code[pc+1 : end])
			// Right-pad implicit zeros when code is truncated.
			if missing := pc + 1 + n - end; missing > 0 {
				v.Lsh(v, uint(missing*8))
			}
			ln++
			if hookStep {
				f.gas = gas
				e.stepEvent(f, pc, op, gasBefore)
			}
			pc += 1 + n
			continue

		case classDup:
			stack.dup(int(op-DUP1) + 1)
			ln++
			if hookStep {
				f.gas = gas
				e.stepEvent(f, pc, op, gasBefore)
			}
			pc++
			continue

		case classSwap:
			stack.swap(int(op-SWAP1) + 1)
			if hookStep {
				f.gas = gas
				e.stepEvent(f, pc, op, gasBefore)
			}
			pc++
			continue

		case classPop:
			stack.drop()
			ln--
			if hookStep {
				f.gas = gas
				e.stepEvent(f, pc, op, gasBefore)
			}
			pc++
			continue

		case classJumpdest:
			if hookStep {
				f.gas = gas
				e.stepEvent(f, pc, op, gasBefore)
			}
			pc++
			continue
		}

		f.gas = gas
		ret, nextPC, done, err := e.execute(f, op, pc)
		gas = f.gas
		ln = stack.Len()
		if err != nil {
			return nil, err
		}
		if hookStep {
			e.stepEvent(f, pc, op, gasBefore)
		}
		if done {
			if op == REVERT {
				return ret, ErrExecutionReverted
			}
			return ret, nil
		}
		pc = nextPC
	}
}

// stepEvent assembles and emits the StepInfo for one instruction. Only
// called when an OnStep observer is installed (e.hookStep), keeping the
// assembly cost out of the unobserved hot loop.
func (e *EVM) stepEvent(f *frame, pc uint64, op OpCode, gasBefore uint64) {
	e.Hooks.step(StepInfo{
		Depth:    e.depth,
		PC:       pc,
		Op:       op,
		Gas:      gasBefore,
		Cost:     gasBefore - f.gas,
		StackLen: f.stack.Len(),
		MemLen:   f.mem.Len(),
		Address:  f.address,
	})
}

// memSpan pops nothing; it validates an (offset, size) pair already
// popped from the stack, charges memory expansion, resizes, and
// returns the concrete bounds.
func (e *EVM) memSpan(f *frame, offset, size *uint256.Int) (uint64, uint64, error) {
	if size.IsZero() {
		return 0, 0, nil
	}
	off, overflow := offset.Uint64WithOverflow()
	if overflow {
		return 0, 0, ErrGasUintOverflow
	}
	sz, overflow := size.Uint64WithOverflow()
	if overflow {
		return 0, 0, ErrGasUintOverflow
	}
	if err := e.chargeMemory(f, off, sz); err != nil {
		return 0, 0, err
	}
	return off, sz, nil
}

// chargeMemory charges expansion gas up to offset+size and resizes.
func (e *EVM) chargeMemory(f *frame, offset, size uint64) error {
	if size == 0 {
		return nil
	}
	end := offset + size
	if end < offset {
		return ErrGasUintOverflow
	}
	if end <= uint64(f.mem.Len()) {
		return nil
	}
	oldCost, err := memoryGasCost(uint64(f.mem.Len()))
	if err != nil {
		return err
	}
	newCost, err := memoryGasCost(end)
	if err != nil {
		return err
	}
	if !f.useGas(newCost - oldCost) {
		return ErrOutOfGas
	}
	f.mem.resize(end)
	return nil
}

// chargeCopy charges the per-word copy cost.
func (f *frame) chargeCopy(size uint64) error {
	if !f.useGas(wordCount(size) * copyGasPerWord) {
		return ErrOutOfGas
	}
	return nil
}

// getData extracts [offset, offset+size) from data with zero padding.
func getData(data []byte, offset, size uint64) []byte {
	length := uint64(len(data))
	if offset > length {
		offset = length
	}
	end := offset + size
	if end < offset || end > length {
		end = length
	}
	out := make([]byte, size)
	copy(out, data[offset:end])
	return out
}

// execute handles every non-PUSH/DUP/SWAP opcode. It returns the
// frame's output when done is true.
func (e *EVM) execute(f *frame, op OpCode, pc uint64) (ret []byte, nextPC uint64, done bool, err error) {
	nextPC = pc + 1
	stack := f.stack
	switch op {
	case STOP:
		return nil, nextPC, true, nil

	// --- Arithmetic ---
	case ADD:
		x := stack.pop()
		y := stack.peek(0)
		y.Add(&x, y)
	case MUL:
		x := stack.pop()
		y := stack.peek(0)
		y.Mul(&x, y)
	case SUB:
		x := stack.pop()
		y := stack.peek(0)
		y.Sub(&x, y)
	case DIV:
		x := stack.pop()
		y := stack.peek(0)
		y.Div(&x, y)
	case SDIV:
		x := stack.pop()
		y := stack.peek(0)
		y.SDiv(&x, y)
	case MOD:
		x := stack.pop()
		y := stack.peek(0)
		y.Mod(&x, y)
	case SMOD:
		x := stack.pop()
		y := stack.peek(0)
		y.SMod(&x, y)
	case ADDMOD:
		x := stack.pop()
		y := stack.pop()
		m := stack.peek(0)
		m.AddMod(&x, &y, m)
	case MULMOD:
		x := stack.pop()
		y := stack.pop()
		m := stack.peek(0)
		m.MulMod(&x, &y, m)
	case EXP:
		base := stack.pop()
		exp := stack.peek(0)
		if !f.useGas(expByteGas * uint64(exp.ByteLen())) {
			return nil, 0, false, ErrOutOfGas
		}
		exp.Exp(&base, exp)
	case SIGNEXTEND:
		back := stack.pop()
		x := stack.peek(0)
		x.SignExtend(&back, x)

	// --- Comparison / bitwise ---
	case LT:
		x := stack.pop()
		y := stack.peek(0)
		setBool(y, x.Lt(y))
	case GT:
		x := stack.pop()
		y := stack.peek(0)
		setBool(y, x.Gt(y))
	case SLT:
		x := stack.pop()
		y := stack.peek(0)
		setBool(y, x.Slt(y))
	case SGT:
		x := stack.pop()
		y := stack.peek(0)
		setBool(y, x.Sgt(y))
	case EQ:
		x := stack.pop()
		y := stack.peek(0)
		setBool(y, x.Eq(y))
	case ISZERO:
		x := stack.peek(0)
		setBool(x, x.IsZero())
	case AND:
		x := stack.pop()
		y := stack.peek(0)
		y.And(&x, y)
	case OR:
		x := stack.pop()
		y := stack.peek(0)
		y.Or(&x, y)
	case XOR:
		x := stack.pop()
		y := stack.peek(0)
		y.Xor(&x, y)
	case NOT:
		x := stack.peek(0)
		x.Not(x)
	case BYTE:
		n := stack.pop()
		x := stack.peek(0)
		x.Byte(&n, x)
	case SHL:
		shift := stack.pop()
		x := stack.peek(0)
		if shift.IsUint64() && shift.Uint64() < 256 {
			x.Lsh(x, uint(shift.Uint64()))
		} else {
			x.Clear()
		}
	case SHR:
		shift := stack.pop()
		x := stack.peek(0)
		if shift.IsUint64() && shift.Uint64() < 256 {
			x.Rsh(x, uint(shift.Uint64()))
		} else {
			x.Clear()
		}
	case SAR:
		shift := stack.pop()
		x := stack.peek(0)
		if shift.IsUint64() && shift.Uint64() < 256 {
			x.SRsh(x, uint(shift.Uint64()))
		} else if x.Sign() < 0 {
			x.Not(new(uint256.Int)) // all ones
		} else {
			x.Clear()
		}

	// --- KECCAK256 ---
	case KECCAK256:
		offset := stack.pop()
		size := stack.peek(0)
		off, sz, err := e.memSpan(f, &offset, size)
		if err != nil {
			return nil, 0, false, err
		}
		if !f.useGas(keccakGasPerWord * wordCount(sz)) {
			return nil, 0, false, ErrOutOfGas
		}
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: off, Size: sz})
		}
		var h [keccak.Size]byte
		keccak.Sum256Into(h[:], f.mem.view(off, sz))
		size.SetBytes(h[:])

	// --- Environment ---
	case ADDRESS:
		stack.pushSlot().SetBytes(f.address[:])
	case BALANCE:
		addrWord := stack.peek(0)
		addr := wordToAddress(addrWord)
		warm := e.State.AddressWarm(addr)
		if !chargeAccountAccess(f, warm) {
			return nil, 0, false, ErrOutOfGas
		}
		if e.hookWS {
			e.Hooks.worldState(WorldStateAccess{Kind: WSBalance, Addr: addr, Warm: warm})
		}
		addrWord.Set(e.State.GetBalance(addr))
	case ORIGIN:
		stack.pushSlot().SetBytes(e.Tx.Origin[:])
	case CALLER:
		stack.pushSlot().SetBytes(f.caller[:])
	case CALLVALUE:
		stack.push(f.value)
	case CALLDATALOAD:
		offset := stack.peek(0)
		if off, overflow := offset.Uint64WithOverflow(); !overflow {
			offset.SetBytes(getData(f.input, off, 32))
		} else {
			offset.Clear()
		}
	case CALLDATASIZE:
		stack.pushUint64(uint64(len(f.input)))
	case CALLDATACOPY:
		memOff := stack.pop()
		dataOff := stack.pop()
		size := stack.pop()
		dst, sz, err := e.memSpan(f, &memOff, &size)
		if err != nil {
			return nil, 0, false, err
		}
		if err := f.chargeCopy(sz); err != nil {
			return nil, 0, false, err
		}
		src, _ := dataOff.Uint64WithOverflow()
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: dst, Size: sz, Write: true})
		}
		f.mem.set(dst, getData(f.input, src, sz))
	case CODESIZE:
		stack.pushUint64(uint64(len(f.code)))
	case CODECOPY:
		memOff := stack.pop()
		codeOff := stack.pop()
		size := stack.pop()
		dst, sz, err := e.memSpan(f, &memOff, &size)
		if err != nil {
			return nil, 0, false, err
		}
		if err := f.chargeCopy(sz); err != nil {
			return nil, 0, false, err
		}
		src, _ := codeOff.Uint64WithOverflow()
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: dst, Size: sz, Write: true})
		}
		f.mem.set(dst, getData(f.code, src, sz))
	case GASPRICE:
		stack.push(e.Tx.GasPrice)
	case EXTCODESIZE:
		addrWord := stack.peek(0)
		addr := wordToAddress(addrWord)
		warm := e.State.AddressWarm(addr)
		if !chargeAccountAccess(f, warm) {
			return nil, 0, false, ErrOutOfGas
		}
		if e.hookWS {
			e.Hooks.worldState(WorldStateAccess{Kind: WSCodeSize, Addr: addr, Warm: warm})
		}
		addrWord.SetUint64(uint64(e.State.GetCodeSize(addr)))
	case EXTCODECOPY:
		addrWord := stack.pop()
		memOff := stack.pop()
		codeOff := stack.pop()
		size := stack.pop()
		addr := wordToAddress(&addrWord)
		warm := e.State.AddressWarm(addr)
		if !chargeAccountAccess(f, warm) {
			return nil, 0, false, ErrOutOfGas
		}
		dst, sz, err := e.memSpan(f, &memOff, &size)
		if err != nil {
			return nil, 0, false, err
		}
		if err := f.chargeCopy(sz); err != nil {
			return nil, 0, false, err
		}
		if e.hookWS {
			e.Hooks.worldState(WorldStateAccess{Kind: WSCode, Addr: addr, Warm: warm})
		}
		src, _ := codeOff.Uint64WithOverflow()
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: dst, Size: sz, Write: true})
		}
		f.mem.set(dst, getData(e.State.GetCode(addr), src, sz))
	case RETURNDATASIZE:
		stack.pushUint64(uint64(len(f.retData)))
	case RETURNDATACOPY:
		memOff := stack.pop()
		dataOff := stack.pop()
		size := stack.pop()
		src, overflow := dataOff.Uint64WithOverflow()
		if overflow {
			return nil, 0, false, ErrReturnDataOOB
		}
		szCheck, overflow := size.Uint64WithOverflow()
		if overflow || src+szCheck < src || src+szCheck > uint64(len(f.retData)) {
			return nil, 0, false, ErrReturnDataOOB
		}
		dst, sz, err := e.memSpan(f, &memOff, &size)
		if err != nil {
			return nil, 0, false, err
		}
		if err := f.chargeCopy(sz); err != nil {
			return nil, 0, false, err
		}
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: dst, Size: sz, Write: true})
		}
		f.mem.set(dst, f.retData[src:src+sz])
	case EXTCODEHASH:
		addrWord := stack.peek(0)
		addr := wordToAddress(addrWord)
		warm := e.State.AddressWarm(addr)
		if !chargeAccountAccess(f, warm) {
			return nil, 0, false, ErrOutOfGas
		}
		if e.hookWS {
			e.Hooks.worldState(WorldStateAccess{Kind: WSCodeHash, Addr: addr, Warm: warm})
		}
		h := e.State.GetCodeHash(addr)
		addrWord.SetBytes(h[:])

	// --- Block context ---
	case BLOCKHASH:
		num := stack.peek(0)
		var h types.Hash
		if e.Block.BlockHash != nil && num.IsUint64() {
			n := num.Uint64()
			// Only the most recent 256 blocks are visible.
			if n < e.Block.Number && e.Block.Number-n <= 256 {
				h = e.Block.BlockHash(n)
			}
		}
		num.SetBytes(h[:])
	case COINBASE:
		stack.pushSlot().SetBytes(e.Block.Coinbase[:])
	case TIMESTAMP:
		stack.pushUint64(e.Block.Timestamp)
	case NUMBER:
		stack.pushUint64(e.Block.Number)
	case PREVRANDAO:
		stack.pushSlot().SetBytes(e.Block.PrevRandao[:])
	case GASLIMIT:
		stack.pushUint64(e.Block.GasLimit)
	case CHAINID:
		stack.push(e.Block.ChainID)
	case SELFBALANCE:
		stack.push(e.State.GetBalance(f.address))
	case BASEFEE:
		stack.push(e.Block.BaseFee)

	// --- Stack / memory / storage / flow ---
	case POP:
		stack.pop()
	case MLOAD:
		offset := stack.peek(0)
		off, overflow := offset.Uint64WithOverflow()
		if overflow {
			return nil, 0, false, ErrGasUintOverflow
		}
		if err := e.chargeMemory(f, off, 32); err != nil {
			return nil, 0, false, err
		}
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: off, Size: 32})
		}
		offset.SetBytes(f.mem.view(off, 32))
	case MSTORE:
		offset := stack.pop()
		val := stack.pop()
		off, overflow := offset.Uint64WithOverflow()
		if overflow {
			return nil, 0, false, ErrGasUintOverflow
		}
		if err := e.chargeMemory(f, off, 32); err != nil {
			return nil, 0, false, err
		}
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: off, Size: 32, Write: true})
		}
		f.mem.set32(off, &val)
	case MSTORE8:
		offset := stack.pop()
		val := stack.pop()
		off, overflow := offset.Uint64WithOverflow()
		if overflow {
			return nil, 0, false, ErrGasUintOverflow
		}
		if err := e.chargeMemory(f, off, 1); err != nil {
			return nil, 0, false, err
		}
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: off, Size: 1, Write: true})
		}
		f.mem.setByte(off, byte(val.Uint64()))
	case SLOAD:
		keyWord := stack.peek(0)
		key := types.BytesToHash(keyBytes(keyWord))
		warm := e.State.SlotWarm(f.address, key)
		cost := ColdSloadGas
		if warm {
			cost = WarmStorageReadGas
		}
		if !f.useGas(cost) {
			return nil, 0, false, ErrOutOfGas
		}
		v := e.State.GetStorage(f.address, key)
		if e.hookWS {
			e.Hooks.worldState(WorldStateAccess{Kind: WSStorage, Addr: f.address, Key: key, Warm: warm})
		}
		keyWord.SetBytes(v[:])
	case SSTORE:
		if e.readOnly {
			return nil, 0, false, ErrWriteProtection
		}
		if f.gas <= sstoreSentryGas {
			return nil, 0, false, ErrOutOfGas
		}
		keyWord := stack.pop()
		valWord := stack.pop()
		key := types.BytesToHash(keyBytes(&keyWord))
		valB := valWord.Bytes32()
		value := types.Hash(valB)
		if err := e.sstoreGas(f, key, value); err != nil {
			return nil, 0, false, err
		}
		if e.hookWS {
			e.Hooks.worldState(WorldStateAccess{Kind: WSStorage, Addr: f.address, Key: key, Write: true, Warm: true})
		}
		e.State.SetStorage(f.address, key, value)
	case JUMP:
		dest := stack.pop()
		if !f.validJumpdest(&dest) {
			return nil, 0, false, ErrInvalidJump
		}
		nextPC = dest.Uint64()
	case JUMPI:
		dest := stack.pop()
		cond := stack.pop()
		if !cond.IsZero() {
			if !f.validJumpdest(&dest) {
				return nil, 0, false, ErrInvalidJump
			}
			nextPC = dest.Uint64()
		}
	case PC:
		stack.pushUint64(pc)
	case MSIZE:
		stack.pushUint64(uint64(f.mem.Len()))
	case GAS:
		stack.pushUint64(f.gas)
	case JUMPDEST:
		// No-op.
	case TLOAD:
		keyWord := stack.peek(0)
		key := types.BytesToHash(keyBytes(keyWord))
		v := e.State.GetTransient(f.address, key)
		keyWord.SetBytes(v[:])
	case TSTORE:
		if e.readOnly {
			return nil, 0, false, ErrWriteProtection
		}
		keyWord := stack.pop()
		valWord := stack.pop()
		key := types.BytesToHash(keyBytes(&keyWord))
		valB := valWord.Bytes32()
		e.State.SetTransient(f.address, key, types.Hash(valB))
	case MCOPY:
		dstWord := stack.pop()
		srcWord := stack.pop()
		size := stack.pop()
		sz, overflow := size.Uint64WithOverflow()
		if overflow {
			return nil, 0, false, ErrGasUintOverflow
		}
		dst, overflow := dstWord.Uint64WithOverflow()
		if overflow {
			return nil, 0, false, ErrGasUintOverflow
		}
		src, overflow := srcWord.Uint64WithOverflow()
		if overflow {
			return nil, 0, false, ErrGasUintOverflow
		}
		if sz > 0 {
			// Charge expansion over the larger reach.
			reach := dst
			if src > reach {
				reach = src
			}
			if err := e.chargeMemory(f, reach, sz); err != nil {
				return nil, 0, false, err
			}
			if err := f.chargeCopy(sz); err != nil {
				return nil, 0, false, err
			}
			// Ensure both spans are in bounds.
			if err := e.chargeMemory(f, dst, sz); err != nil {
				return nil, 0, false, err
			}
			if err := e.chargeMemory(f, src, sz); err != nil {
				return nil, 0, false, err
			}
			if e.hookMem {
				e.Hooks.memAccess(MemAccess{Offset: src, Size: sz})
			}
			if e.hookMem {
				e.Hooks.memAccess(MemAccess{Offset: dst, Size: sz, Write: true})
			}
			f.mem.copyWithin(dst, src, sz)
		}
	case PUSH0:
		stack.pushZero()

	// --- Logs ---
	case LOG0, LOG1, LOG2, LOG3, LOG4:
		if e.readOnly {
			return nil, 0, false, ErrWriteProtection
		}
		topicCount := int(op - LOG0)
		offset := stack.pop()
		size := stack.pop()
		off, sz, err := e.memSpan(f, &offset, &size)
		if err != nil {
			return nil, 0, false, err
		}
		if !f.useGas(logTopicGas*uint64(topicCount) + logDataGas*sz) {
			return nil, 0, false, ErrOutOfGas
		}
		log := &types.Log{Address: f.address, Data: f.mem.get(off, sz)}
		for i := 0; i < topicCount; i++ {
			topic := stack.pop()
			tb := topic.Bytes32()
			log.Topics = append(log.Topics, types.Hash(tb))
		}
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: off, Size: sz})
		}
		e.State.AddLog(log)
		e.Hooks.log(log)

	// --- Calls and creates ---
	case CREATE, CREATE2:
		if e.readOnly {
			return nil, 0, false, ErrWriteProtection
		}
		value := stack.pop()
		offset := stack.pop()
		size := stack.pop()
		var salt types.Hash
		if op == CREATE2 {
			s := stack.pop()
			sb := s.Bytes32()
			salt = types.Hash(sb)
		}
		off, sz, err := e.memSpan(f, &offset, &size)
		if err != nil {
			return nil, 0, false, err
		}
		// EIP-3860 initcode word cost.
		if !f.useGas(initCodeWordGas * wordCount(sz)) {
			return nil, 0, false, ErrOutOfGas
		}
		if op == CREATE2 {
			// CREATE2 hashes the initcode.
			if !f.useGas(keccakGasPerWord * wordCount(sz)) {
				return nil, 0, false, ErrOutOfGas
			}
		}
		initCode := f.mem.get(off, sz)
		gas := f.gas - f.gas/64 // EIP-150 reserve
		f.gas -= gas

		var (
			created types.Address
			leftGas uint64
			retData []byte
			callErr error
		)
		if op == CREATE {
			retData, created, leftGas, callErr = e.Create(f.address, initCode, gas, &value)
		} else {
			retData, created, leftGas, callErr = e.Create2(f.address, initCode, salt, gas, &value)
		}
		f.gas += leftGas
		f.retData = nil
		if errors.Is(callErr, ErrExecutionReverted) {
			f.retData = retData
		}
		if callErr != nil {
			stack.pushZero()
		} else {
			stack.pushSlot().SetBytes(created[:])
		}

	case CALL, CALLCODE, DELEGATECALL, STATICCALL:
		ret2, err := e.execCall(f, op)
		if err != nil {
			return nil, 0, false, err
		}
		_ = ret2

	// --- Termination ---
	case RETURN, REVERT:
		offset := stack.pop()
		size := stack.pop()
		off, sz, err := e.memSpan(f, &offset, &size)
		if err != nil {
			return nil, 0, false, err
		}
		if e.hookMem {
			e.Hooks.memAccess(MemAccess{Offset: off, Size: sz})
		}
		return f.mem.get(off, sz), nextPC, true, nil

	case INVALID:
		return nil, 0, false, ErrInvalidOpcode

	case SELFDESTRUCT:
		if e.readOnly {
			return nil, 0, false, ErrWriteProtection
		}
		beneficiaryWord := stack.pop()
		beneficiary := wordToAddress(&beneficiaryWord)
		warm := e.State.AddressWarm(beneficiary)
		if !warm {
			if !f.useGas(ColdAccountAccessGas) {
				return nil, 0, false, ErrOutOfGas
			}
		}
		balance := e.State.GetBalance(f.address)
		// New-account surcharge when sending to a fresh account.
		if !balance.IsZero() && !e.State.Exists(beneficiary) {
			if !f.useGas(callNewAccountGas) {
				return nil, 0, false, ErrOutOfGas
			}
		}
		e.State.AddBalance(beneficiary, balance)
		e.State.Selfdestruct(f.address)
		return nil, nextPC, true, nil

	default:
		return nil, 0, false, ErrInvalidOpcode
	}
	return nil, nextPC, false, nil
}

// execCall implements the four message-call opcodes.
func (e *EVM) execCall(f *frame, op OpCode) ([]byte, error) {
	stack := f.stack
	gasWord := stack.pop()
	addrWord := stack.pop()
	value := new(uint256.Int)
	if op == CALL || op == CALLCODE {
		v := stack.pop()
		value = &v
	}
	inOff := stack.pop()
	inSize := stack.pop()
	outOff := stack.pop()
	outSize := stack.pop()

	target := wordToAddress(&addrWord)

	// Static context forbids value transfer.
	if op == CALL && e.readOnly && !value.IsZero() {
		return nil, ErrWriteProtection
	}

	// EIP-2929 account access.
	warm := e.State.AddressWarm(target)
	if !chargeAccountAccess(f, warm) {
		return nil, ErrOutOfGas
	}

	// Memory for input and output.
	iOff, iSz, err := e.memSpan(f, &inOff, &inSize)
	if err != nil {
		return nil, err
	}
	oOff, oSz, err := e.memSpan(f, &outOff, &outSize)
	if err != nil {
		return nil, err
	}

	// Value-transfer surcharges.
	var extraGas uint64
	if !value.IsZero() {
		extraGas += callValueTransferGas
		if op == CALL && !e.State.Exists(target) {
			extraGas += callNewAccountGas
		}
	}
	if !f.useGas(extraGas) {
		return nil, ErrOutOfGas
	}

	// Requested gas, capped by 63/64.
	requested, overflow := gasWord.Uint64WithOverflow()
	if overflow {
		requested = ^uint64(0)
	}
	gas := callGasCap(f.gas, requested)
	if !f.useGas(gas) {
		return nil, ErrOutOfGas
	}
	if !value.IsZero() {
		gas += callStipend
	}

	input := f.mem.get(iOff, iSz)
	if e.hookMem {
		e.Hooks.memAccess(MemAccess{Offset: iOff, Size: iSz})
	}

	var (
		ret     []byte
		leftGas uint64
		callErr error
	)
	switch op {
	case CALL:
		ret, leftGas, callErr = e.callInternal(CallKindCall, f.address, target, target, input, gas, value, false)
	case CALLCODE:
		ret, leftGas, callErr = e.callInternal(CallKindCallCode, f.address, f.address, target, input, gas, value, false)
	case DELEGATECALL:
		// Keep caller context and value.
		ret, leftGas, callErr = e.callInternal(CallKindDelegateCall, f.caller, f.address, target, input, gas, f.value, false)
	case STATICCALL:
		ret, leftGas, callErr = e.callInternal(CallKindStaticCall, f.address, target, target, input, gas, new(uint256.Int), true)
	}

	f.gas += leftGas
	f.retData = ret

	// Copy output into memory (truncated to outSize).
	if callErr == nil || errors.Is(callErr, ErrExecutionReverted) {
		n := uint64(len(ret))
		if n > oSz {
			n = oSz
		}
		if n > 0 {
			if e.hookMem {
				e.Hooks.memAccess(MemAccess{Offset: oOff, Size: n, Write: true})
			}
			f.mem.set(oOff, ret[:n])
		}
	}

	if callErr == nil {
		stack.pushUint64(1)
	} else {
		stack.pushZero()
	}
	return ret, nil
}

// sstoreGas implements the EIP-2200/2929/3529 SSTORE gas and refunds.
func (e *EVM) sstoreGas(f *frame, key types.Hash, value types.Hash) error {
	// Cold-slot surcharge.
	warm := e.State.SlotWarm(f.address, key)
	if !warm {
		if !f.useGas(ColdSloadGas) {
			return ErrOutOfGas
		}
	}
	current := e.State.GetStorage(f.address, key)
	if current == value {
		if !f.useGas(WarmStorageReadGas) {
			return ErrOutOfGas
		}
		return nil
	}
	original := e.State.GetCommittedStorage(f.address, key)
	if original == current {
		if original.IsZero() {
			if !f.useGas(sstoreSetGas) {
				return ErrOutOfGas
			}
			return nil
		}
		if !f.useGas(sstoreResetGas) {
			return ErrOutOfGas
		}
		if value.IsZero() {
			e.State.AddRefund(sstoreClearRefund)
		}
		return nil
	}
	// Dirty slot.
	if !f.useGas(WarmStorageReadGas) {
		return ErrOutOfGas
	}
	if !original.IsZero() {
		if current.IsZero() {
			e.State.SubRefund(sstoreClearRefund)
		} else if value.IsZero() {
			e.State.AddRefund(sstoreClearRefund)
		}
	}
	if original == value {
		if original.IsZero() {
			e.State.AddRefund(sstoreSetGas - WarmStorageReadGas)
		} else {
			e.State.AddRefund(sstoreResetGas - WarmStorageReadGas)
		}
	}
	return nil
}

// chargeAccountAccess charges the EIP-2929 account access cost.
func chargeAccountAccess(f *frame, warm bool) bool {
	cost := ColdAccountAccessGas
	if warm {
		cost = WarmStorageReadGas
	}
	return f.useGas(cost)
}

// setBool sets z to 1 or 0.
func setBool(z *uint256.Int, b bool) {
	if b {
		z.SetOne()
	} else {
		z.Clear()
	}
}

// wordToAddress extracts the low 20 bytes of a word.
func wordToAddress(w *uint256.Int) types.Address {
	b := w.Bytes32()
	return types.BytesToAddress(b[12:])
}

// keyBytes returns the 32-byte representation of a word.
func keyBytes(w *uint256.Int) []byte {
	b := w.Bytes32()
	return b[:]
}
