// Package evm implements a Shanghai-era Ethereum Virtual Machine
// interpreter: the full instruction set, gas schedule, call/create
// semantics, and precompiles. It is the functional core shared by the
// software baseline executor ("Geth" in the paper's figures) and the
// hardware EVM model in internal/hevm, which shadows the interpreter's
// access events onto the paper's 3-layer memory hierarchy.
package evm

import "fmt"

// OpCode is an EVM opcode byte.
type OpCode byte

// Opcode definitions (Shanghai + EIP-1153 transient storage + MCOPY).
const (
	STOP       OpCode = 0x00
	ADD        OpCode = 0x01
	MUL        OpCode = 0x02
	SUB        OpCode = 0x03
	DIV        OpCode = 0x04
	SDIV       OpCode = 0x05
	MOD        OpCode = 0x06
	SMOD       OpCode = 0x07
	ADDMOD     OpCode = 0x08
	MULMOD     OpCode = 0x09
	EXP        OpCode = 0x0a
	SIGNEXTEND OpCode = 0x0b

	LT     OpCode = 0x10
	GT     OpCode = 0x11
	SLT    OpCode = 0x12
	SGT    OpCode = 0x13
	EQ     OpCode = 0x14
	ISZERO OpCode = 0x15
	AND    OpCode = 0x16
	OR     OpCode = 0x17
	XOR    OpCode = 0x18
	NOT    OpCode = 0x19
	BYTE   OpCode = 0x1a
	SHL    OpCode = 0x1b
	SHR    OpCode = 0x1c
	SAR    OpCode = 0x1d

	KECCAK256 OpCode = 0x20

	ADDRESS        OpCode = 0x30
	BALANCE        OpCode = 0x31
	ORIGIN         OpCode = 0x32
	CALLER         OpCode = 0x33
	CALLVALUE      OpCode = 0x34
	CALLDATALOAD   OpCode = 0x35
	CALLDATASIZE   OpCode = 0x36
	CALLDATACOPY   OpCode = 0x37
	CODESIZE       OpCode = 0x38
	CODECOPY       OpCode = 0x39
	GASPRICE       OpCode = 0x3a
	EXTCODESIZE    OpCode = 0x3b
	EXTCODECOPY    OpCode = 0x3c
	RETURNDATASIZE OpCode = 0x3d
	RETURNDATACOPY OpCode = 0x3e
	EXTCODEHASH    OpCode = 0x3f

	BLOCKHASH   OpCode = 0x40
	COINBASE    OpCode = 0x41
	TIMESTAMP   OpCode = 0x42
	NUMBER      OpCode = 0x43
	PREVRANDAO  OpCode = 0x44
	GASLIMIT    OpCode = 0x45
	CHAINID     OpCode = 0x46
	SELFBALANCE OpCode = 0x47
	BASEFEE     OpCode = 0x48

	POP      OpCode = 0x50
	MLOAD    OpCode = 0x51
	MSTORE   OpCode = 0x52
	MSTORE8  OpCode = 0x53
	SLOAD    OpCode = 0x54
	SSTORE   OpCode = 0x55
	JUMP     OpCode = 0x56
	JUMPI    OpCode = 0x57
	PC       OpCode = 0x58
	MSIZE    OpCode = 0x59
	GAS      OpCode = 0x5a
	JUMPDEST OpCode = 0x5b
	TLOAD    OpCode = 0x5c
	TSTORE   OpCode = 0x5d
	MCOPY    OpCode = 0x5e
	PUSH0    OpCode = 0x5f

	PUSH1  OpCode = 0x60
	PUSH32 OpCode = 0x7f
	DUP1   OpCode = 0x80
	DUP16  OpCode = 0x8f
	SWAP1  OpCode = 0x90
	SWAP16 OpCode = 0x9f

	LOG0 OpCode = 0xa0
	LOG1 OpCode = 0xa1
	LOG2 OpCode = 0xa2
	LOG3 OpCode = 0xa3
	LOG4 OpCode = 0xa4

	CREATE       OpCode = 0xf0
	CALL         OpCode = 0xf1
	CALLCODE     OpCode = 0xf2
	RETURN       OpCode = 0xf3
	DELEGATECALL OpCode = 0xf4
	CREATE2      OpCode = 0xf5
	STATICCALL   OpCode = 0xfa
	REVERT       OpCode = 0xfd
	INVALID      OpCode = 0xfe
	SELFDESTRUCT OpCode = 0xff
)

// IsPush reports whether op is PUSH1..PUSH32.
func (op OpCode) IsPush() bool {
	return op >= PUSH1 && op <= PUSH32
}

// PushSize returns the immediate size for PUSH ops (0 otherwise).
func (op OpCode) PushSize() int {
	if op.IsPush() {
		return int(op-PUSH1) + 1
	}
	return 0
}

// opInfo is the static metadata for one opcode.
type opInfo struct {
	name string
	// pops and pushes are the stack consumption/production counts.
	pops, pushes int
	// gas is the static gas cost (dynamic parts added separately).
	gas uint64
	// defined marks opcodes that exist in this fork.
	defined bool
}

// Gas cost tiers (yellow paper names).
const (
	gasZero    uint64 = 0
	gasBase    uint64 = 2
	gasVeryLow uint64 = 3
	gasLow     uint64 = 5
	gasMid     uint64 = 8
	gasHigh    uint64 = 10
	gasJumpDst uint64 = 1
)

// Dispatch classes for the interpreter's inline fast paths. Everything
// else routes through the execute switch.
const (
	classGeneric uint8 = iota
	classPush1
	classPush
	classDup
	classSwap
	classPop
	classJumpdest
)

// opHot is the compact per-opcode metadata the dispatch loop touches on
// every instruction: 8 bytes, so 8 opcodes share a cache line (opInfo
// drags a 16-byte name string through the cache instead).
//
// minStack/stackSpan encode both stack-bounds checks as one unsigned
// comparison: depth is valid iff
//
//	uint(len) - uint(minStack) <= uint(stackSpan)
//
// where minStack = pops and stackSpan = StackLimit - pushes (depth may
// be at most StackLimit + pops - pushes before the op runs). Undefined
// opcodes get the zero-value pops/pushes, so they pass for free and
// fall through to execute()'s ErrInvalidOpcode default.
type opHot struct {
	minStack  uint8
	class     uint8
	stackSpan uint16
	gas       uint32
}

// opTable is indexed by opcode byte.
var _opTable = buildOpTable()

// _opHotTable is derived from _opTable at init.
var _opHotTable = buildOpHotTable()

func buildOpHotTable() [256]opHot {
	var t [256]opHot
	for i := range t {
		info := &_opTable[i]
		op := OpCode(i)
		h := opHot{
			minStack:  uint8(info.pops),
			stackSpan: uint16(StackLimit - info.pushes),
			gas:       uint32(info.gas),
		}
		if info.defined {
			switch {
			case op == PUSH1:
				h.class = classPush1
			case op.IsPush():
				h.class = classPush
			case op >= DUP1 && op <= DUP16:
				h.class = classDup
			case op >= SWAP1 && op <= SWAP16:
				h.class = classSwap
			case op == POP:
				h.class = classPop
			case op == JUMPDEST:
				h.class = classJumpdest
			}
		}
		t[i] = h
	}
	return t
}

// stackBoundsErr classifies a failed combined bounds check.
func stackBoundsErr(op OpCode, depth int) error {
	if depth < _opTable[op].pops {
		return ErrStackUnderflow
	}
	return ErrStackOverflow
}

func buildOpTable() [256]opInfo {
	var t [256]opInfo
	def := func(op OpCode, name string, pops, pushes int, gas uint64) {
		t[op] = opInfo{name: name, pops: pops, pushes: pushes, gas: gas, defined: true}
	}
	def(STOP, "STOP", 0, 0, gasZero)
	def(ADD, "ADD", 2, 1, gasVeryLow)
	def(MUL, "MUL", 2, 1, gasLow)
	def(SUB, "SUB", 2, 1, gasVeryLow)
	def(DIV, "DIV", 2, 1, gasLow)
	def(SDIV, "SDIV", 2, 1, gasLow)
	def(MOD, "MOD", 2, 1, gasLow)
	def(SMOD, "SMOD", 2, 1, gasLow)
	def(ADDMOD, "ADDMOD", 3, 1, gasMid)
	def(MULMOD, "MULMOD", 3, 1, gasMid)
	def(EXP, "EXP", 2, 1, gasHigh) // + dynamic
	def(SIGNEXTEND, "SIGNEXTEND", 2, 1, gasLow)

	def(LT, "LT", 2, 1, gasVeryLow)
	def(GT, "GT", 2, 1, gasVeryLow)
	def(SLT, "SLT", 2, 1, gasVeryLow)
	def(SGT, "SGT", 2, 1, gasVeryLow)
	def(EQ, "EQ", 2, 1, gasVeryLow)
	def(ISZERO, "ISZERO", 1, 1, gasVeryLow)
	def(AND, "AND", 2, 1, gasVeryLow)
	def(OR, "OR", 2, 1, gasVeryLow)
	def(XOR, "XOR", 2, 1, gasVeryLow)
	def(NOT, "NOT", 1, 1, gasVeryLow)
	def(BYTE, "BYTE", 2, 1, gasVeryLow)
	def(SHL, "SHL", 2, 1, gasVeryLow)
	def(SHR, "SHR", 2, 1, gasVeryLow)
	def(SAR, "SAR", 2, 1, gasVeryLow)

	def(KECCAK256, "KECCAK256", 2, 1, 30) // + dynamic

	def(ADDRESS, "ADDRESS", 0, 1, gasBase)
	def(BALANCE, "BALANCE", 1, 1, 0) // dynamic (2929)
	def(ORIGIN, "ORIGIN", 0, 1, gasBase)
	def(CALLER, "CALLER", 0, 1, gasBase)
	def(CALLVALUE, "CALLVALUE", 0, 1, gasBase)
	def(CALLDATALOAD, "CALLDATALOAD", 1, 1, gasVeryLow)
	def(CALLDATASIZE, "CALLDATASIZE", 0, 1, gasBase)
	def(CALLDATACOPY, "CALLDATACOPY", 3, 0, gasVeryLow) // + copy
	def(CODESIZE, "CODESIZE", 0, 1, gasBase)
	def(CODECOPY, "CODECOPY", 3, 0, gasVeryLow) // + copy
	def(GASPRICE, "GASPRICE", 0, 1, gasBase)
	def(EXTCODESIZE, "EXTCODESIZE", 1, 1, 0) // dynamic (2929)
	def(EXTCODECOPY, "EXTCODECOPY", 4, 0, 0) // dynamic (2929 + copy)
	def(RETURNDATASIZE, "RETURNDATASIZE", 0, 1, gasBase)
	def(RETURNDATACOPY, "RETURNDATACOPY", 3, 0, gasVeryLow) // + copy
	def(EXTCODEHASH, "EXTCODEHASH", 1, 1, 0)                // dynamic (2929)

	def(BLOCKHASH, "BLOCKHASH", 1, 1, 20)
	def(COINBASE, "COINBASE", 0, 1, gasBase)
	def(TIMESTAMP, "TIMESTAMP", 0, 1, gasBase)
	def(NUMBER, "NUMBER", 0, 1, gasBase)
	def(PREVRANDAO, "PREVRANDAO", 0, 1, gasBase)
	def(GASLIMIT, "GASLIMIT", 0, 1, gasBase)
	def(CHAINID, "CHAINID", 0, 1, gasBase)
	def(SELFBALANCE, "SELFBALANCE", 0, 1, gasLow)
	def(BASEFEE, "BASEFEE", 0, 1, gasBase)

	def(POP, "POP", 1, 0, gasBase)
	def(MLOAD, "MLOAD", 1, 1, gasVeryLow)
	def(MSTORE, "MSTORE", 2, 0, gasVeryLow)
	def(MSTORE8, "MSTORE8", 2, 0, gasVeryLow)
	def(SLOAD, "SLOAD", 1, 1, 0)   // dynamic (2929)
	def(SSTORE, "SSTORE", 2, 0, 0) // dynamic (2200)
	def(JUMP, "JUMP", 1, 0, gasMid)
	def(JUMPI, "JUMPI", 2, 0, gasHigh)
	def(PC, "PC", 0, 1, gasBase)
	def(MSIZE, "MSIZE", 0, 1, gasBase)
	def(GAS, "GAS", 0, 1, gasBase)
	def(JUMPDEST, "JUMPDEST", 0, 0, gasJumpDst)
	def(TLOAD, "TLOAD", 1, 1, 100)
	def(TSTORE, "TSTORE", 2, 0, 100)
	def(MCOPY, "MCOPY", 3, 0, gasVeryLow) // + copy
	def(PUSH0, "PUSH0", 0, 1, gasBase)

	for i := 0; i < 32; i++ {
		def(PUSH1+OpCode(i), fmt.Sprintf("PUSH%d", i+1), 0, 1, gasVeryLow)
	}
	for i := 0; i < 16; i++ {
		def(DUP1+OpCode(i), fmt.Sprintf("DUP%d", i+1), i+1, i+2, gasVeryLow)
	}
	for i := 0; i < 16; i++ {
		def(SWAP1+OpCode(i), fmt.Sprintf("SWAP%d", i+1), i+2, i+2, gasVeryLow)
	}
	for i := 0; i <= 4; i++ {
		def(LOG0+OpCode(i), fmt.Sprintf("LOG%d", i), i+2, 0, 375) // + dynamic
	}

	def(CREATE, "CREATE", 3, 1, 32000)
	def(CALL, "CALL", 7, 1, 0)         // dynamic
	def(CALLCODE, "CALLCODE", 7, 1, 0) // dynamic
	def(RETURN, "RETURN", 2, 0, gasZero)
	def(DELEGATECALL, "DELEGATECALL", 6, 1, 0) // dynamic
	def(CREATE2, "CREATE2", 4, 1, 32000)
	def(STATICCALL, "STATICCALL", 6, 1, 0) // dynamic
	def(REVERT, "REVERT", 2, 0, gasZero)
	def(INVALID, "INVALID", 0, 0, gasZero)
	def(SELFDESTRUCT, "SELFDESTRUCT", 1, 0, 5000)
	return t
}

// String returns the mnemonic for op ("op(0xNN)" when undefined).
func (op OpCode) String() string {
	info := _opTable[op]
	if !info.defined {
		return fmt.Sprintf("op(0x%02x)", byte(op))
	}
	return info.name
}

// Defined reports whether op exists in the supported fork.
func (op OpCode) Defined() bool {
	return _opTable[op].defined
}
