package evm

import "errors"

// Execution errors. All of these consume the frame's remaining gas
// except ErrExecutionReverted, which refunds leftover gas to the caller.
var (
	ErrOutOfGas              = errors.New("evm: out of gas")
	ErrGasUintOverflow       = errors.New("evm: gas uint64 overflow")
	ErrStackUnderflow        = errors.New("evm: stack underflow")
	ErrStackOverflow         = errors.New("evm: stack overflow")
	ErrInvalidJump           = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode         = errors.New("evm: invalid opcode")
	ErrWriteProtection       = errors.New("evm: write protection (static call)")
	ErrReturnDataOOB         = errors.New("evm: return data out of bounds")
	ErrDepth                 = errors.New("evm: max call depth exceeded")
	ErrInsufficientBalance   = errors.New("evm: insufficient balance for transfer")
	ErrAddressCollision      = errors.New("evm: contract address collision")
	ErrMaxCodeSize           = errors.New("evm: max code size exceeded")
	ErrMaxInitCodeSize       = errors.New("evm: max initcode size exceeded")
	ErrExecutionReverted     = errors.New("evm: execution reverted")
	ErrNonceOverflow         = errors.New("evm: nonce overflow")
	ErrUnsupportedPrecompile = errors.New("evm: unsupported precompile")

	// Transaction-level validation errors.
	ErrIntrinsicGas      = errors.New("evm: intrinsic gas exceeds gas limit")
	ErrNonceMismatch     = errors.New("evm: nonce mismatch")
	ErrInsufficientFunds = errors.New("evm: insufficient funds for gas * price + value")
)
