package evm

import (
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// CallKind distinguishes the frame-creating operations.
type CallKind int

// Call kinds.
const (
	CallKindCall CallKind = iota + 1
	CallKindCallCode
	CallKindDelegateCall
	CallKindStaticCall
	CallKindCreate
	CallKindCreate2
)

// String returns the mnemonic of the call kind.
func (k CallKind) String() string {
	switch k {
	case CallKindCall:
		return "CALL"
	case CallKindCallCode:
		return "CALLCODE"
	case CallKindDelegateCall:
		return "DELEGATECALL"
	case CallKindStaticCall:
		return "STATICCALL"
	case CallKindCreate:
		return "CREATE"
	case CallKindCreate2:
		return "CREATE2"
	default:
		return "CALL?"
	}
}

// WorldStateKind classifies world-state queries for the access-pattern
// observers (paper: K-V style queries vs Code queries).
type WorldStateKind int

// World-state query kinds.
const (
	WSBalance WorldStateKind = iota + 1
	WSNonce
	WSCode
	WSCodeHash
	WSCodeSize
	WSStorage
)

// StepInfo describes one executed instruction.
type StepInfo struct {
	Depth    int
	PC       uint64
	Op       OpCode
	Gas      uint64 // gas remaining before this step
	Cost     uint64 // total gas charged by this step
	StackLen int
	MemLen   int
	Address  types.Address
}

// CallFrameInfo describes a frame being entered.
type CallFrameInfo struct {
	Kind      CallKind
	Depth     int
	Caller    types.Address
	Address   types.Address // callee (or created address)
	CodeAddr  types.Address // where the running code lives
	Gas       uint64
	Value     *uint256.Int
	InputSize int
	CodeSize  int
}

// CallResultInfo describes a frame exit.
type CallResultInfo struct {
	Depth      int
	GasUsed    uint64
	ReturnSize int
	Err        error
	Reverted   bool
}

// WorldStateAccess describes one access crossing the world-state
// boundary (the accesses HarDTAPE must obliviously serve).
type WorldStateAccess struct {
	Kind  WorldStateKind
	Addr  types.Address
	Key   types.Hash // storage key when Kind == WSStorage
	Write bool
	Warm  bool // EIP-2929 warmth == "found in local cache"
}

// MemAccess describes a runtime Memory access (drives the hardware
// frame-size model).
type MemAccess struct {
	Offset uint64
	Size   uint64
	Write  bool
}

// Hooks receive interpreter events. Any field may be nil. Hook calls
// are synchronous; implementations must be fast.
type Hooks struct {
	OnStep       func(StepInfo)
	OnCallEnter  func(CallFrameInfo)
	OnCallExit   func(CallResultInfo)
	OnWorldState func(WorldStateAccess)
	OnMemAccess  func(MemAccess)
	OnLog        func(*types.Log)
}

func (h *Hooks) step(info StepInfo) {
	if h != nil && h.OnStep != nil {
		h.OnStep(info)
	}
}

func (h *Hooks) callEnter(info CallFrameInfo) {
	if h != nil && h.OnCallEnter != nil {
		h.OnCallEnter(info)
	}
}

func (h *Hooks) callExit(info CallResultInfo) {
	if h != nil && h.OnCallExit != nil {
		h.OnCallExit(info)
	}
}

func (h *Hooks) worldState(a WorldStateAccess) {
	if h != nil && h.OnWorldState != nil {
		h.OnWorldState(a)
	}
}

func (h *Hooks) memAccess(a MemAccess) {
	if h != nil && h.OnMemAccess != nil {
		h.OnMemAccess(a)
	}
}

func (h *Hooks) log(l *types.Log) {
	if h != nil && h.OnLog != nil {
		h.OnLog(l)
	}
}

// CombineHooks fans events out to multiple consumers (e.g. the tracer
// and the hardware shadow) in order. Nil entries are skipped, and each
// handler is installed only when at least one consumer implements it,
// so the interpreter's hook-presence fast path stays effective through
// a combined hook set.
func CombineHooks(hooks ...*Hooks) *Hooks {
	var list []*Hooks
	var anyStep, anyEnter, anyExit, anyWS, anyMem, anyLog bool
	for _, h := range hooks {
		if h == nil {
			continue
		}
		list = append(list, h)
		anyStep = anyStep || h.OnStep != nil
		anyEnter = anyEnter || h.OnCallEnter != nil
		anyExit = anyExit || h.OnCallExit != nil
		anyWS = anyWS || h.OnWorldState != nil
		anyMem = anyMem || h.OnMemAccess != nil
		anyLog = anyLog || h.OnLog != nil
	}
	out := &Hooks{}
	if anyStep {
		out.OnStep = func(i StepInfo) {
			for _, h := range list {
				h.step(i)
			}
		}
	}
	if anyEnter {
		out.OnCallEnter = func(i CallFrameInfo) {
			for _, h := range list {
				h.callEnter(i)
			}
		}
	}
	if anyExit {
		out.OnCallExit = func(i CallResultInfo) {
			for _, h := range list {
				h.callExit(i)
			}
		}
	}
	if anyWS {
		out.OnWorldState = func(a WorldStateAccess) {
			for _, h := range list {
				h.worldState(a)
			}
		}
	}
	if anyMem {
		out.OnMemAccess = func(a MemAccess) {
			for _, h := range list {
				h.memAccess(a)
			}
		}
	}
	if anyLog {
		out.OnLog = func(l *types.Log) {
			for _, h := range list {
				h.log(l)
			}
		}
	}
	return out
}
