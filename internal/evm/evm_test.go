package evm

import (
	"errors"
	"testing"

	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

var (
	testContract = types.MustAddress("0xc0de00000000000000000000000000000000c0de")
	testCaller   = types.MustAddress("0xca11e4000000000000000000000000000000ca11")
)

// newTestEVM deploys code at testContract and funds testCaller.
func newTestEVM(t testing.TB, code []byte) *EVM {
	t.Helper()
	w := state.NewWorldState()
	o := state.NewOverlay(w)
	o.CreateAccount(testCaller)
	o.AddBalance(testCaller, uint256.NewInt(1_000_000_000))
	if len(code) > 0 {
		o.CreateAccount(testContract)
		o.SetCode(testContract, code)
	}
	e := New(BlockContext{
		Number:    100,
		Timestamp: 1700000000,
		GasLimit:  30_000_000,
		Coinbase:  types.MustAddress("0x5555555555555555555555555555555555555555"),
		BaseFee:   uint256.NewInt(7),
		ChainID:   uint256.NewInt(1),
	}, o)
	return e
}

// runCode executes code and returns (ret, leftGas, err).
func runCode(t testing.TB, code []byte, input []byte, gas uint64) ([]byte, uint64, error) {
	t.Helper()
	e := newTestEVM(t, code)
	return e.Call(testCaller, testContract, input, gas, new(uint256.Int))
}

// push builds a minimal PUSH instruction sequence for a uint64.
func push(v uint64) []byte {
	if v == 0 {
		return []byte{byte(PUSH0)}
	}
	var b []byte
	for x := v; x > 0; x >>= 8 {
		b = append([]byte{byte(x)}, b...)
	}
	return append([]byte{byte(PUSH1) + byte(len(b)-1)}, b...)
}

// cat concatenates byte slices.
func cat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// returnTop is a code suffix that returns the top of stack as 32 bytes.
var returnTop = cat(push(0), []byte{byte(MSTORE)}, push(32), push(0), []byte{byte(RETURN)})

// evalBinary runs "PUSH y, PUSH x, OP, return top".
func evalBinary(t *testing.T, op OpCode, x, y *uint256.Int) *uint256.Int {
	t.Helper()
	xb, yb := x.Bytes32(), y.Bytes32()
	code := cat(
		[]byte{byte(PUSH32)}, yb[:],
		[]byte{byte(PUSH32)}, xb[:],
		[]byte{byte(op)},
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 1_000_000)
	if err != nil {
		t.Fatalf("%s(%s, %s): %v", op, x, y, err)
	}
	return new(uint256.Int).SetBytes(ret)
}

func TestArithmeticOpcodes(t *testing.T) {
	u := uint256.NewInt
	neg := func(v uint64) *uint256.Int {
		return new(uint256.Int).Neg(u(v))
	}
	tests := []struct {
		op   OpCode
		x, y *uint256.Int
		want *uint256.Int
	}{
		{ADD, u(3), u(4), u(7)},
		{MUL, u(5), u(6), u(30)},
		{SUB, u(10), u(4), u(6)},
		{SUB, u(4), u(10), neg(6)},
		{DIV, u(20), u(6), u(3)},
		{DIV, u(20), u(0), u(0)},
		{SDIV, neg(20), u(5), neg(4)},
		{MOD, u(17), u(5), u(2)},
		{MOD, u(17), u(0), u(0)},
		{SMOD, neg(17), u(5), neg(2)},
		{EXP, u(2), u(10), u(1024)},
		{EXP, u(0), u(0), u(1)},
		{LT, u(1), u(2), u(1)},
		{LT, u(2), u(1), u(0)},
		{GT, u(2), u(1), u(1)},
		{SLT, neg(1), u(1), u(1)},
		{SGT, u(1), neg(1), u(1)},
		{EQ, u(9), u(9), u(1)},
		{EQ, u(9), u(8), u(0)},
		{AND, u(0b1100), u(0b1010), u(0b1000)},
		{OR, u(0b1100), u(0b1010), u(0b1110)},
		{XOR, u(0b1100), u(0b1010), u(0b0110)},
		{BYTE, u(31), u(0xff), u(0xff)},
		{BYTE, u(30), u(0xff), u(0)},
		{SHL, u(4), u(1), u(16)},
		{SHR, u(4), u(16), u(1)},
		{SHR, u(300), u(16), u(0)},
		{SAR, u(2), neg(8), neg(2)},
		{SIGNEXTEND, u(0), u(0xff), neg(1)},
	}
	for _, tt := range tests {
		got := evalBinary(t, tt.op, tt.x, tt.y)
		if !got.Eq(tt.want) {
			t.Errorf("%s(%s, %s) = %s, want %s", tt.op, tt.x, tt.y, got, tt.want)
		}
	}
}

func TestTernaryOpcodes(t *testing.T) {
	u := uint256.NewInt
	eval3 := func(op OpCode, x, y, m uint64) *uint256.Int {
		code := cat(push(m), push(y), push(x), []byte{byte(op)}, returnTop)
		ret, _, err := runCode(t, code, nil, 1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return new(uint256.Int).SetBytes(ret)
	}
	if got := eval3(ADDMOD, 10, 10, 7); !got.Eq(u(6)) {
		t.Errorf("ADDMOD = %s", got)
	}
	if got := eval3(MULMOD, 10, 10, 7); !got.Eq(u(2)) {
		t.Errorf("MULMOD = %s", got)
	}
	if got := eval3(ADDMOD, 10, 10, 0); !got.IsZero() {
		t.Errorf("ADDMOD mod 0 = %s", got)
	}
}

func TestUnaryAndStackOps(t *testing.T) {
	// ISZERO / NOT / POP / DUP / SWAP
	code := cat(
		push(0), []byte{byte(ISZERO)}, // 1
		push(5),                // [1, 5]
		[]byte{byte(DUP1 + 1)}, // [1, 5, 1]
		[]byte{byte(SWAP1)},    // [1, 1, 5]
		[]byte{byte(POP)},      // [1, 1]
		[]byte{byte(ADD)},      // [2]
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(2)) {
		t.Fatalf("stack ops result = %s", got)
	}
}

func TestPushTruncatedAtCodeEnd(t *testing.T) {
	// PUSH32 with only 1 immediate byte: pads with zeros on the right.
	code := []byte{byte(PUSH32), 0xff}
	// Falls off the end → implicit STOP, no error.
	_, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatalf("truncated push should not error: %v", err)
	}
}

func TestJumpAndLoop(t *testing.T) {
	// for (i = 5; i != 0; i--) {} then return 42.
	// Layout:
	// 0: PUSH1 5
	// 2: JUMPDEST           ; loop
	// 3: PUSH1 1, SWAP1, SUB ; i-1 ... wait ordering
	// simpler: i on stack; loop: DUP1, PUSH jump-taken...
	code := cat(
		push(5),                                 // i
		[]byte{byte(JUMPDEST)},                  // offset 2
		push(1), []byte{byte(SWAP1), byte(SUB)}, // i = i - 1
		[]byte{byte(DUP1)},
		push(2), []byte{byte(JUMPI)}, // loop while i != 0
		[]byte{byte(POP)},
		push(42), returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(42)) {
		t.Fatalf("loop result = %s", got)
	}
}

func TestInvalidJumpTargets(t *testing.T) {
	// Jump to non-JUMPDEST.
	code := cat(push(1), []byte{byte(JUMP)})
	if _, _, err := runCode(t, code, nil, 100_000); !errors.Is(err, ErrInvalidJump) {
		t.Errorf("jump to non-dest: %v", err)
	}
	// Jump into PUSH immediate that contains a 0x5b byte.
	code = cat(
		push(3), []byte{byte(JUMP)},
		[]byte{byte(PUSH1), byte(JUMPDEST)}, // 0x5b is immediate data at offset 3? recompute below
	)
	// offsets: 0:PUSH1 1:3 2:JUMP 3:PUSH1 4:0x5b — jump to 3 is PUSH1 (not a dest)
	if _, _, err := runCode(t, code, nil, 100_000); !errors.Is(err, ErrInvalidJump) {
		t.Errorf("jump to push opcode: %v", err)
	}
	// Jump to immediate byte that looks like JUMPDEST (offset 4).
	code = cat(
		push(4), []byte{byte(JUMP)},
		[]byte{byte(PUSH1), byte(JUMPDEST)},
	)
	if _, _, err := runCode(t, code, nil, 100_000); !errors.Is(err, ErrInvalidJump) {
		t.Errorf("jump into immediate: %v", err)
	}
	// Out of range.
	code = cat(push(1000), []byte{byte(JUMP)})
	if _, _, err := runCode(t, code, nil, 100_000); !errors.Is(err, ErrInvalidJump) {
		t.Errorf("jump out of range: %v", err)
	}
}

func TestMemoryOps(t *testing.T) {
	// MSTORE8 + MLOAD + MSIZE.
	code := cat(
		push(0xab), push(31), []byte{byte(MSTORE8)},
		push(0), []byte{byte(MLOAD)},
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0xab)) {
		t.Fatalf("MSTORE8/MLOAD = %s", got)
	}

	// MSIZE grows in words.
	code = cat(
		push(1), push(100), []byte{byte(MSTORE8)},
		[]byte{byte(MSIZE)},
		returnTop,
	)
	ret, _, err = runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(128)) {
		t.Fatalf("MSIZE = %s, want 128", got)
	}
}

func TestMCopy(t *testing.T) {
	code := cat(
		push(0xdeadbeef), push(0), []byte{byte(MSTORE)},
		// copy [0,32) to [32,64)
		push(32), push(0), push(32), []byte{byte(MCOPY)},
		push(32), []byte{byte(MLOAD)},
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0xdeadbeef)) {
		t.Fatalf("MCOPY = %s", got)
	}
}

func TestKeccakOpcode(t *testing.T) {
	// keccak256 of empty: well-known constant.
	code := cat(push(0), push(0), []byte{byte(KECCAK256)}, returnTop)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if types.BytesToHash(ret) != types.EmptyCodeHash {
		t.Fatalf("KECCAK256(empty) = %x", ret)
	}
}

func TestStorageOps(t *testing.T) {
	code := cat(
		push(0x1234), push(7), []byte{byte(SSTORE)},
		push(7), []byte{byte(SLOAD)},
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0x1234)) {
		t.Fatalf("SSTORE/SLOAD = %s", got)
	}
}

func TestTransientStorageOps(t *testing.T) {
	code := cat(
		push(0x99), push(1), []byte{byte(TSTORE)},
		push(1), []byte{byte(TLOAD)},
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0x99)) {
		t.Fatalf("TSTORE/TLOAD = %s", got)
	}
}

func TestSloadGasColdWarm(t *testing.T) {
	// Two SLOADs of the same key: first cold (2100), second warm (100).
	code := cat(
		push(5), []byte{byte(SLOAD), byte(POP)},
		push(5), []byte{byte(SLOAD), byte(POP)},
		[]byte{byte(STOP)},
	)
	gas := uint64(100_000)
	_, left, err := runCode(t, code, nil, gas)
	if err != nil {
		t.Fatal(err)
	}
	used := gas - left
	// 2x (PUSH 3 + POP 2) + 2100 + 100 = 10 + 2200 = 2210.
	if used != 2210 {
		t.Fatalf("cold+warm SLOAD gas = %d, want 2210", used)
	}
}

func TestSstoreGasAndRefund(t *testing.T) {
	e := newTestEVM(t, cat(
		push(1), push(0), []byte{byte(SSTORE)}, // set 0→1: 20000+2100(cold)
		push(0), push(0), []byte{byte(SSTORE)}, // clear 1→0 (dirty): 100, refund 19900
		[]byte{byte(STOP)},
	))
	gas := uint64(100_000)
	_, left, err := e.Call(testCaller, testContract, nil, gas, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	used := gas - left
	// pushes: PUSH1(3) + 3×PUSH0(2) = 9; SSTORE1 = 2100 + 20000; SSTORE2 = 100.
	want := uint64(9 + 22100 + 100)
	if used != want {
		t.Fatalf("SSTORE gas = %d, want %d", used, want)
	}
	if refund := e.State.GetRefund(); refund != sstoreSetGas-WarmStorageReadGas {
		t.Fatalf("refund = %d, want %d", refund, sstoreSetGas-WarmStorageReadGas)
	}
}

func TestEnvironmentOpcodes(t *testing.T) {
	returnOp := func(op OpCode) *uint256.Int {
		code := cat([]byte{byte(op)}, returnTop)
		ret, _, err := runCode(t, code, nil, 100_000)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return new(uint256.Int).SetBytes(ret)
	}
	if got := returnOp(ADDRESS); !got.Eq(testContract.Word()) {
		t.Errorf("ADDRESS = %s", got.Hex())
	}
	if got := returnOp(CALLER); !got.Eq(testCaller.Word()) {
		t.Errorf("CALLER = %s", got.Hex())
	}
	if got := returnOp(ORIGIN); !got.IsZero() {
		// Origin is unset when calling Call directly (not ApplyTransaction).
		t.Errorf("ORIGIN = %s", got.Hex())
	}
	if got := returnOp(NUMBER); !got.Eq(uint256.NewInt(100)) {
		t.Errorf("NUMBER = %s", got)
	}
	if got := returnOp(TIMESTAMP); !got.Eq(uint256.NewInt(1700000000)) {
		t.Errorf("TIMESTAMP = %s", got)
	}
	if got := returnOp(GASLIMIT); !got.Eq(uint256.NewInt(30_000_000)) {
		t.Errorf("GASLIMIT = %s", got)
	}
	if got := returnOp(CHAINID); !got.Eq(uint256.NewInt(1)) {
		t.Errorf("CHAINID = %s", got)
	}
	if got := returnOp(BASEFEE); !got.Eq(uint256.NewInt(7)) {
		t.Errorf("BASEFEE = %s", got)
	}
	if got := returnOp(CALLVALUE); !got.IsZero() {
		t.Errorf("CALLVALUE = %s", got)
	}
	if got := returnOp(CODESIZE); got.IsZero() {
		t.Errorf("CODESIZE = %s", got)
	}
}

func TestCalldataOpcodes(t *testing.T) {
	input := make([]byte, 36)
	input[3] = 0xaa
	input[35] = 0xbb
	// CALLDATALOAD at 4 returns bytes [4,36).
	code := cat(push(4), []byte{byte(CALLDATALOAD)}, returnTop)
	ret, _, err := runCode(t, code, input, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if ret[31] != 0xbb {
		t.Errorf("CALLDATALOAD = %x", ret)
	}
	// CALLDATASIZE.
	code = cat([]byte{byte(CALLDATASIZE)}, returnTop)
	ret, _, err = runCode(t, code, input, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(36)) {
		t.Errorf("CALLDATASIZE = %s", got)
	}
	// CALLDATACOPY with out-of-range source zero-pads.
	code = cat(
		push(64), push(100), push(0), []byte{byte(CALLDATACOPY)},
		push(0), []byte{byte(MLOAD)}, returnTop,
	)
	ret, _, err = runCode(t, code, input, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Errorf("CALLDATACOPY pad = %s", got)
	}
}

func TestLogs(t *testing.T) {
	e := newTestEVM(t, cat(
		push(0xfeed), push(0), []byte{byte(MSTORE)},
		push(0x11), push(0x22), // topics (LOG2 pops topic1 then topic2)
		push(32), push(0), // size, offset — stack order: offset, size on top
		[]byte{byte(LOG2)},
		[]byte{byte(STOP)},
	))
	// LOG2 stack: [offset, size, topic1, topic2] popped as offset, size, t1, t2.
	// Our code pushed in order 0x11, 0x22, 32(size), 0(offset) → pops offset=0, size=32, t1=0x22, t2=0x11.
	_, _, err := e.Call(testCaller, testContract, nil, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	logs := e.State.Logs()
	if len(logs) != 1 {
		t.Fatalf("logs = %d", len(logs))
	}
	l := logs[0]
	if l.Address != testContract || len(l.Topics) != 2 {
		t.Fatalf("log = %+v", l)
	}
	if l.Topics[0].Word().Uint64() != 0x22 || l.Topics[1].Word().Uint64() != 0x11 {
		t.Fatalf("topics = %v", l.Topics)
	}
	if new(uint256.Int).SetBytes(l.Data).Uint64() != 0xfeed {
		t.Fatalf("data = %x", l.Data)
	}
}

func TestStackErrors(t *testing.T) {
	if _, _, err := runCode(t, []byte{byte(ADD)}, nil, 100_000); !errors.Is(err, ErrStackUnderflow) {
		t.Errorf("underflow: %v", err)
	}
	// Overflow: push 1025 values.
	var code []byte
	for i := 0; i < StackLimit+1; i++ {
		code = append(code, byte(PUSH0))
	}
	if _, _, err := runCode(t, code, nil, 10_000_000); !errors.Is(err, ErrStackOverflow) {
		t.Errorf("overflow: %v", err)
	}
}

func TestOutOfGas(t *testing.T) {
	code := cat(push(1), push(2), []byte{byte(ADD)}, []byte{byte(STOP)})
	_, left, err := runCode(t, code, nil, 5)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v", err)
	}
	if left != 0 {
		t.Fatalf("OOG should burn all gas, left %d", left)
	}
}

func TestInvalidOpcode(t *testing.T) {
	if _, _, err := runCode(t, []byte{0x0c}, nil, 100_000); !errors.Is(err, ErrInvalidOpcode) {
		t.Errorf("undefined opcode: %v", err)
	}
	if _, _, err := runCode(t, []byte{byte(INVALID)}, nil, 100_000); !errors.Is(err, ErrInvalidOpcode) {
		t.Errorf("INVALID: %v", err)
	}
}

func TestRevertReturnsDataAndGas(t *testing.T) {
	code := cat(
		push(0xbad), push(0), []byte{byte(MSTORE)},
		push(32), push(0), []byte{byte(REVERT)},
	)
	ret, left, err := runCode(t, code, nil, 100_000)
	if !errors.Is(err, ErrExecutionReverted) {
		t.Fatalf("err = %v", err)
	}
	if left == 0 {
		t.Fatal("REVERT should refund remaining gas")
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0xbad)) {
		t.Fatalf("revert data = %s", got)
	}
}

func TestRevertUndoesState(t *testing.T) {
	e := newTestEVM(t, cat(
		push(1), push(0), []byte{byte(SSTORE)},
		push(0), push(0), []byte{byte(REVERT)},
	))
	_, _, err := e.Call(testCaller, testContract, nil, 100_000, new(uint256.Int))
	if !errors.Is(err, ErrExecutionReverted) {
		t.Fatal(err)
	}
	if !e.State.GetStorage(testContract, types.Hash{}).IsZero() {
		t.Fatal("storage write survived revert")
	}
}

func TestBalanceAndSelfBalance(t *testing.T) {
	e := newTestEVM(t, cat([]byte{byte(SELFBALANCE)}, returnTop))
	e.State.AddBalance(testContract, uint256.NewInt(12345))
	ret, _, err := e.Call(testCaller, testContract, nil, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(12345)) {
		t.Fatalf("SELFBALANCE = %s", got)
	}

	// BALANCE of the caller via opcode.
	code := cat([]byte{byte(PUSH1 + 19)}, testCaller[:], []byte{byte(BALANCE)}, returnTop)
	e2 := newTestEVM(t, code)
	ret, _, err = e2.Call(testCaller, testContract, nil, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(1_000_000_000)) {
		t.Fatalf("BALANCE = %s", got)
	}
}

func TestValueTransferViaCall(t *testing.T) {
	e := newTestEVM(t, nil) // EOA target
	target := types.MustAddress("0x9999999999999999999999999999999999999999")
	_, _, err := e.Call(testCaller, target, nil, 100_000, uint256.NewInt(250))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.State.GetBalance(target); !got.Eq(uint256.NewInt(250)) {
		t.Fatalf("target balance = %s", got)
	}
	if got := e.State.GetBalance(testCaller); !got.Eq(uint256.NewInt(1_000_000_000 - 250)) {
		t.Fatalf("caller balance = %s", got)
	}
	// Insufficient balance fails without state change.
	_, _, err = e.Call(testCaller, target, nil, 100_000, uint256.NewInt(1<<62))
	if !errors.Is(err, ErrInsufficientBalance) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlockhashWindow(t *testing.T) {
	e := newTestEVM(t, cat(push(99), []byte{byte(BLOCKHASH)}, returnTop))
	e.Block.BlockHash = func(n uint64) types.Hash {
		var h types.Hash
		h[31] = byte(n)
		return h
	}
	ret, _, err := e.Call(testCaller, testContract, nil, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if ret[31] != 99 {
		t.Fatalf("BLOCKHASH(99) = %x", ret)
	}
	// Out of the 256-block window (current=100, ask for 100).
	e2 := newTestEVM(t, cat(push(100), []byte{byte(BLOCKHASH)}, returnTop))
	e2.Block.BlockHash = e.Block.BlockHash
	ret, _, err = e2.Call(testCaller, testContract, nil, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if new(uint256.Int).SetBytes(ret).Sign() != 0 {
		t.Fatalf("BLOCKHASH(current) should be zero: %x", ret)
	}
}

func TestGasOpcodeAndMemoryExpansionCost(t *testing.T) {
	// Expanding memory to 1 MB should cost ~3M gas; verify quadratic
	// component is charged: expansion to 32768 words = 3*32768 + 32768^2/512.
	size := uint64(1 << 20)
	code := cat(push(0xff), push(size-1), []byte{byte(MSTORE8)}, []byte{byte(STOP)})
	gas := uint64(10_000_000)
	_, left, err := runCode(t, code, nil, gas)
	if err != nil {
		t.Fatal(err)
	}
	words := (size + 31) / 32
	wantMem := words*3 + words*words/512
	used := gas - left
	if used < wantMem || used > wantMem+20 {
		t.Fatalf("memory expansion gas = %d, want ≈ %d", used, wantMem)
	}
}
