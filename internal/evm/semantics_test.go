package evm

import (
	"bytes"
	"errors"
	"testing"

	"hardtape/internal/secp256k1"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

func TestMCopyOverlapping(t *testing.T) {
	// Forward-overlapping copy must behave like memmove: write
	// 64 bytes of pattern, copy [0,64) → [32,96), check [32,96) equals
	// the original [0,64).
	var code []byte
	code = append(code, push(0x1111)...)
	code = append(code, push(0)...)
	code = append(code, byte(MSTORE))
	code = append(code, push(0x2222)...)
	code = append(code, push(32)...)
	code = append(code, byte(MSTORE))
	// MCOPY(dst=32, src=0, size=64)
	code = append(code, push(64)...)
	code = append(code, push(0)...)
	code = append(code, push(32)...)
	code = append(code, byte(MCOPY))
	// return memory[32:96]
	code = append(code, push(64)...)
	code = append(code, push(32)...)
	code = append(code, byte(RETURN))
	ret, _, err := runCode(t, code, nil, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret) != 64 {
		t.Fatalf("len = %d", len(ret))
	}
	w1 := new(uint256.Int).SetBytes(ret[:32])
	w2 := new(uint256.Int).SetBytes(ret[32:])
	if !w1.Eq(uint256.NewInt(0x1111)) || !w2.Eq(uint256.NewInt(0x2222)) {
		t.Fatalf("overlapping MCOPY: %s %s", w1, w2)
	}
}

func TestCreateInStaticContextFails(t *testing.T) {
	// STATICCALL → callee attempts CREATE → the static frame fails.
	calleeCode := cat(
		push(0), push(0), push(0), []byte{byte(CREATE), byte(POP), byte(STOP)},
	)
	var code []byte
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(200_000)...)
	code = append(code, byte(STATICCALL))
	code = append(code, returnTop...)
	e := newTestEVM(t, code)
	deployAt(e, calleeAddr, calleeCode)
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("CREATE inside static context returned status %s", got)
	}
}

func TestLogInStaticContextFails(t *testing.T) {
	calleeCode := cat(push(0), push(0), []byte{byte(LOG0), byte(STOP)})
	var code []byte
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(200_000)...)
	code = append(code, byte(STATICCALL))
	code = append(code, returnTop...)
	e := newTestEVM(t, code)
	deployAt(e, calleeAddr, calleeCode)
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("LOG inside static context returned status %s", got)
	}
	if len(e.State.Logs()) != 0 {
		t.Fatal("log emitted despite static protection")
	}
}

func TestSelfdestructInStaticContextFails(t *testing.T) {
	calleeCode := cat(push(0), []byte{byte(SELFDESTRUCT)})
	var code []byte
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(200_000)...)
	code = append(code, byte(STATICCALL))
	code = append(code, returnTop...)
	e := newTestEVM(t, code)
	deployAt(e, calleeAddr, calleeCode)
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatal("SELFDESTRUCT inside static context succeeded")
	}
	if e.State.HasSelfdestructed(calleeAddr) {
		t.Fatal("destruct leaked through static context")
	}
}

func TestExpGasScalesWithExponentBytes(t *testing.T) {
	// EXP costs 10 + 50 per exponent byte.
	run := func(exp *uint256.Int) uint64 {
		eb := exp.Bytes32()
		code := cat(
			[]byte{byte(PUSH32)}, eb[:],
			push(2),
			[]byte{byte(EXP), byte(POP), byte(STOP)},
		)
		gas := uint64(100_000)
		_, left, err := runCode(t, code, nil, gas)
		if err != nil {
			t.Fatal(err)
		}
		return gas - left
	}
	oneByte := run(uint256.NewInt(0xff))
	twoBytes := run(uint256.NewInt(0xffff))
	if twoBytes-oneByte != expByteGas {
		t.Fatalf("per-byte EXP cost = %d, want %d", twoBytes-oneByte, expByteGas)
	}
	thirtyTwo := run(new(uint256.Int).Not(new(uint256.Int)))
	if thirtyTwo-oneByte != 31*expByteGas {
		t.Fatalf("32-byte exponent delta = %d", thirtyTwo-oneByte)
	}
}

func TestSARBoundaryShifts(t *testing.T) {
	negOne := new(uint256.Int).Not(new(uint256.Int))
	tests := []struct {
		shift, value, want *uint256.Int
	}{
		// shift ≥ 256 of a negative value → all ones.
		{uint256.NewInt(256), negOne, negOne},
		{uint256.NewInt(300), new(uint256.Int).Neg(uint256.NewInt(100)), negOne},
		// shift ≥ 256 of a positive value → 0.
		{uint256.NewInt(256), uint256.NewInt(100), new(uint256.Int)},
		// 255-bit shift of MIN_INT → -1.
		{uint256.NewInt(255),
			new(uint256.Int).Lsh(uint256.NewInt(1), 255), negOne},
	}
	for _, tt := range tests {
		got := evalBinary(t, SAR, tt.shift, tt.value)
		if !got.Eq(tt.want) {
			t.Errorf("SAR(%s, %s) = %s, want %s", tt.shift, tt.value, got.Hex(), tt.want.Hex())
		}
	}
}

func TestCodecopyOutOfRangeZeroPads(t *testing.T) {
	// CODECOPY past the end of code fills zeros.
	code := cat(
		push(32), push(10_000), push(0), []byte{byte(CODECOPY)},
		push(0), []byte{byte(MLOAD)},
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("out-of-range CODECOPY = %s", got)
	}
}

func TestNestedRevertRestoresOuterWrites(t *testing.T) {
	// Outer writes slot 0 = 1; calls callee which writes slot 0 = 2
	// (of its OWN storage via CALL — use DELEGATECALL so it shares
	// storage) then reverts. Outer's value must survive.
	calleeCode := cat(
		push(2), push(0), []byte{byte(SSTORE)},
		push(0), push(0), []byte{byte(REVERT)},
	)
	var code []byte
	code = append(code, push(1)...)
	code = append(code, push(0)...)
	code = append(code, byte(SSTORE))
	code = append(code, push(0)...) // outSize
	code = append(code, push(0)...) // outOff
	code = append(code, push(0)...) // inSize
	code = append(code, push(0)...) // inOff
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(200_000)...)
	code = append(code, byte(DELEGATECALL), byte(POP))
	code = append(code, push(0)...)
	code = append(code, byte(SLOAD))
	code = append(code, returnTop...)

	e := newTestEVM(t, code)
	deployAt(e, calleeAddr, calleeCode)
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(1)) {
		t.Fatalf("outer write lost after nested revert: %s", got)
	}
}

func TestDeployedContractIsImmediatelyCallable(t *testing.T) {
	// CREATE then CALL the new contract in the same transaction.
	runtime := cat(push(0x77), returnTop)
	// initcode: MSTORE the runtime (it's short) then RETURN it.
	if len(runtime) > 32 {
		t.Fatalf("runtime too long for this encoding: %d", len(runtime))
	}
	padded := make([]byte, 32)
	copy(padded, runtime)
	initCode := cat(
		[]byte{byte(PUSH32)}, padded,
		push(0), []byte{byte(MSTORE)},
		push(uint64(len(runtime))), push(0), []byte{byte(RETURN)},
	)

	var code []byte
	// CREATE(value=0, off=0, size=len(initCode)) after CODECOPYing the
	// initcode from our own code tail... simpler: store initcode via
	// PUSH32 chunks is messy — deploy directly through the EVM API and
	// then CALL from bytecode instead.
	e := newTestEVM(t, nil)
	_, created, _, err := e.Create(testCaller, initCode, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	code = append(code, push(32)...) // outSize
	code = append(code, push(0)...)  // outOff
	code = append(code, push(0)...)  // inSize
	code = append(code, push(0)...)  // inOff
	code = append(code, push(0)...)  // value
	code = append(code, byte(PUSH1)+19)
	code = append(code, created[:]...)
	code = append(code, push(100_000)...)
	code = append(code, byte(CALL), byte(POP))
	code = append(code, push(32)...)
	code = append(code, push(0)...)
	code = append(code, byte(RETURN))
	deployAt(e, testContract, code)
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0x77)) {
		t.Fatalf("call to created contract = %s", got)
	}
}

func TestStackSnapshotForTracers(t *testing.T) {
	s := newStack()
	s.push(uint256.NewInt(1))
	s.push(uint256.NewInt(2))
	snap := s.Snapshot()
	if len(snap) != 2 || !snap[0].Eq(uint256.NewInt(1)) || !snap[1].Eq(uint256.NewInt(2)) {
		t.Fatalf("snapshot: %v", snap)
	}
	// Mutating the stack must not affect the snapshot.
	s.pop()
	if len(snap) != 2 {
		t.Fatal("snapshot aliased")
	}
}

func TestMemoryViewVsGet(t *testing.T) {
	m := newMemory()
	m.resize(64)
	m.set(0, []byte{1, 2, 3})
	got := m.get(0, 3)
	view := m.view(0, 3)
	if !bytes.Equal(got, []byte{1, 2, 3}) || !bytes.Equal(view, got) {
		t.Fatal("get/view mismatch")
	}
	// get copies; view aliases.
	m.setByte(0, 9)
	if got[0] == 9 {
		t.Fatal("get must copy")
	}
	if view[0] != 9 {
		t.Fatal("view must alias")
	}
	if m.get(0, 0) != nil || m.view(0, 0) != nil {
		t.Fatal("zero-size access should be nil")
	}
}

func TestOpcodeStringAndDefined(t *testing.T) {
	if ADD.String() != "ADD" || KECCAK256.String() != "KECCAK256" {
		t.Fatal("mnemonics wrong")
	}
	if OpCode(0x0c).Defined() {
		t.Fatal("0x0c should be undefined")
	}
	if OpCode(0x0c).String() != "op(0x0c)" {
		t.Fatalf("undefined format: %s", OpCode(0x0c).String())
	}
	if !PUSH1.IsPush() || PUSH0.IsPush() || PUSH32.PushSize() != 32 {
		t.Fatal("push classification")
	}
	for op := 0; op < 256; op++ {
		o := OpCode(op)
		if o.Defined() && o.String() == "" {
			t.Fatalf("defined opcode %#x without name", op)
		}
	}
}

func TestApplyTransactionCreate(t *testing.T) {
	// Contract-creating transaction end to end.
	e := newTestEVM(t, nil)
	initCode := cat(push(0), push(0), []byte{byte(RETURN)})
	tx := signedTxFor(t, e, nil, initCode, 200_000)
	res, err := e.ApplyTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("create tx failed: %v", res.Err)
	}
	if res.CreatedContract == (types.Address{}) {
		t.Fatal("no created address reported")
	}
	if e.State.GetNonce(res.CreatedContract) != 1 {
		t.Fatal("created contract nonce should be 1")
	}
	// Ethereum semantics (regression for the double-bump bug): the
	// address derives from the sender's PRE-transaction nonce, and the
	// sender's nonce advances exactly once.
	sender, err := tx.Sender()
	if err != nil {
		t.Fatal(err)
	}
	if want := types.CreateAddress(sender, tx.Nonce); res.CreatedContract != want {
		t.Fatalf("created at %s, want CreateAddress(sender, txNonce) = %s",
			res.CreatedContract, want)
	}
	if got := e.State.GetNonce(sender); got != tx.Nonce+1 {
		t.Fatalf("sender nonce = %d, want %d", got, tx.Nonce+1)
	}
}

// signedTxFor builds and signs a tx from a fresh key funded in e.
func signedTxFor(t *testing.T, e *EVM, to *types.Address, data []byte, gasLimit uint64) *types.Transaction {
	t.Helper()
	priv, err := secpGenerate(t)
	if err != nil {
		t.Fatal(err)
	}
	sender := types.Address(priv.Public.Address())
	e.State.CreateAccount(sender)
	e.State.AddBalance(sender, uint256.NewInt(1<<40))
	tx := &types.Transaction{
		Nonce: 0, GasPrice: uint256.NewInt(1), GasLimit: gasLimit,
		To: to, Value: new(uint256.Int), Data: data,
	}
	if err := tx.Sign(priv); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestMaxInitcodeInTransaction(t *testing.T) {
	e := newTestEVM(t, nil)
	big := make([]byte, MaxInitCodeSize+32)
	tx := signedTxFor(t, e, nil, big, 25_000_000)
	res, err := e.ApplyTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrMaxInitCodeSize) {
		t.Fatalf("oversize initcode tx: %v", res.Err)
	}
}

// secpGenerate isolates the secp256k1 dependency for test helpers.
func secpGenerate(t *testing.T) (*secp256k1.PrivateKey, error) {
	t.Helper()
	return secp256k1.GenerateKey([]byte(t.Name()))
}
