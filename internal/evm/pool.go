package evm

import (
	"sync"

	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// framePool recycles frames together with their stack and memory.
// Ownership discipline (mirroring PR 3's ORAM buffer pools): a frame is
// owned by exactly one call between newFrame and releaseFrame, and
// releaseFrame strips every reference to caller-owned data before the
// frame re-enters the pool, so nothing can leak between transactions —
// or between tenants on a shared device.
var framePool = sync.Pool{
	New: func() any {
		return &frame{stack: newStack(), mem: newMemory()}
	},
}

// newFrame acquires a frame (pooled unless e.DisablePooling) and
// initializes it for one execution. value is retained, not copied: the
// interpreter only ever reads it (CALLVALUE pushes a copy), and every
// caller keeps it alive for the duration of the call.
func (e *EVM) newFrame(caller, address, codeAddr types.Address, code, input []byte, value *uint256.Int, gas uint64, analysis *CodeAnalysis) *frame {
	var f *frame
	if e.DisablePooling {
		f = &frame{stack: newStack(), mem: newMemory()}
	} else {
		f = framePool.Get().(*frame)
	}
	f.caller = caller
	f.address = address
	f.codeAddr = codeAddr
	f.code = code
	f.input = input
	f.value = value
	f.gas = gas
	f.analysis = analysis
	return f
}

// releaseFrame resets f and returns it to the pool. The caller must
// have copied out everything it needs (gas, return data) first: after
// release the frame may be reused by any other call on this process.
func (e *EVM) releaseFrame(f *frame) {
	if e.DisablePooling {
		return
	}
	f.caller = types.Address{}
	f.address = types.Address{}
	f.codeAddr = types.Address{}
	f.code = nil
	f.input = nil
	f.value = nil
	f.gas = 0
	f.retData = nil
	f.analysis = nil
	f.stack.reset()
	f.mem.reset()
	framePool.Put(f)
}
