package mpt

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyRootConstant(t *testing.T) {
	// The canonical empty-trie root from the Ethereum yellow paper.
	want := "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
	if hex.EncodeToString(EmptyRoot[:]) != want {
		t.Fatalf("EmptyRoot = %x, want %s", EmptyRoot, want)
	}
	if New().Hash() != EmptyRoot {
		t.Fatal("empty trie hash != EmptyRoot")
	}
}

func TestKnownRoots(t *testing.T) {
	// Vectors checked against go-ethereum's trie implementation.
	t.Run("single entry", func(t *testing.T) {
		tr := New()
		if err := tr.Put([]byte("A"), []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")); err != nil {
			t.Fatal(err)
		}
		want := "d23786fb4a010da3ce639d66d5e904a11dbc02746d1ce25029e53290cabf28ab"
		if got := hex.EncodeToString(hash32(tr)); got != want {
			t.Fatalf("root = %s, want %s", got, want)
		}
	})
	t.Run("ethereum foundation vector", func(t *testing.T) {
		// The classic "doe/reindeer" vector from the Ethereum wiki.
		tr := New()
		put(t, tr, "doe", "reindeer")
		put(t, tr, "dog", "puppy")
		put(t, tr, "dogglesworth", "cat")
		want := "8aad789dff2f538bca5d8ea56e8abe10f4c7ba3a5dea95fea4cd6e7c3a1168d3"
		if got := hex.EncodeToString(hash32(tr)); got != want {
			t.Fatalf("root = %s, want %s", got, want)
		}
	})
}

func hash32(tr *Trie) []byte {
	h := tr.Hash()
	return h[:]
}

func put(t *testing.T, tr *Trie, k, v string) {
	t.Helper()
	if err := tr.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
}

func TestPutGetDelete(t *testing.T) {
	tr := New()
	kv := map[string]string{
		"do": "verb", "dog": "puppy", "doge": "coin", "horse": "stallion",
	}
	for k, v := range kv {
		put(t, tr, k, v)
	}
	if tr.Len() != len(kv) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(kv))
	}
	for k, v := range kv {
		got, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) = %q, want %q", k, got, v)
		}
	}
	if _, err := tr.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatal("absent key should return ErrNotFound")
	}
	// Overwrite.
	put(t, tr, "dog", "hound")
	if got, _ := tr.Get([]byte("dog")); string(got) != "hound" {
		t.Fatalf("overwrite failed: %q", got)
	}
	// Delete and verify the rest survive.
	if err := tr.Delete([]byte("dog")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get([]byte("dog")); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still present")
	}
	if got, _ := tr.Get([]byte("doge")); string(got) != "coin" {
		t.Fatalf("sibling key lost after delete: %q", got)
	}
	if err := tr.Delete([]byte("never")); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleting a missing key should be ErrNotFound")
	}
}

func TestInputValidation(t *testing.T) {
	tr := New()
	if err := tr.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Error("empty key Put")
	}
	if err := tr.Put([]byte("k"), nil); !errors.Is(err, ErrEmptyValue) {
		t.Error("empty value Put")
	}
	if _, err := tr.Get(nil); !errors.Is(err, ErrEmptyKey) {
		t.Error("empty key Get")
	}
	if err := tr.Delete(nil); !errors.Is(err, ErrEmptyKey) {
		t.Error("empty key Delete")
	}
	if _, err := tr.Prove(nil); !errors.Is(err, ErrEmptyKey) {
		t.Error("empty key Prove")
	}
}

func TestDeleteToEmpty(t *testing.T) {
	tr := New()
	put(t, tr, "a", "1")
	put(t, tr, "b", "2")
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if tr.Hash() != EmptyRoot {
		t.Fatal("trie should collapse to empty root")
	}
}

func TestRootIsInsertionOrderIndependent(t *testing.T) {
	keys := []string{"abc", "abd", "xyz", "x", "abcdef", "q"}
	tr1, tr2 := New(), New()
	for _, k := range keys {
		put(t, tr1, k, "v-"+k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		put(t, tr2, keys[i], "v-"+keys[i])
	}
	if tr1.Hash() != tr2.Hash() {
		t.Fatal("root depends on insertion order")
	}
}

func TestRootChangesOnMutation(t *testing.T) {
	tr := New()
	put(t, tr, "key", "v1")
	h1 := tr.Hash()
	put(t, tr, "key", "v2")
	h2 := tr.Hash()
	if h1 == h2 {
		t.Fatal("root unchanged after value update")
	}
}

func TestProofPresence(t *testing.T) {
	tr := New()
	var keys [][]byte
	for i := 0; i < 200; i++ {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i*7919))
		v := []byte(fmt.Sprintf("value-%d", i))
		if err := tr.Put(k, v); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	root := tr.Hash()
	for i, k := range keys {
		proof, err := tr.Prove(k)
		if err != nil {
			t.Fatalf("Prove(%d): %v", i, err)
		}
		got, err := VerifyProof(root, k, proof)
		if err != nil {
			t.Fatalf("VerifyProof(%d): %v", i, err)
		}
		want := fmt.Sprintf("value-%d", i)
		if string(got) != want {
			t.Fatalf("proof value = %q, want %q", got, want)
		}
	}
}

func TestProofAbsence(t *testing.T) {
	tr := New()
	put(t, tr, "alpha", "1")
	put(t, tr, "beta", "2")
	root := tr.Hash()
	for _, absent := range []string{"gamma", "alphabet", "alp", "a"} {
		proof, err := tr.Prove([]byte(absent))
		if err != nil {
			t.Fatalf("Prove(%q): %v", absent, err)
		}
		got, err := VerifyProof(root, []byte(absent), proof)
		if err != nil {
			t.Fatalf("VerifyProof(%q): %v", absent, err)
		}
		if got != nil {
			t.Fatalf("absence proof for %q returned value %q", absent, got)
		}
	}
}

func TestProofTamperDetection(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		put(t, tr, fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i))
	}
	root := tr.Hash()
	key := []byte("key-25")
	proof, err := tr.Prove(key)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("flipped byte in node", func(t *testing.T) {
		bad := &Proof{Nodes: make([][]byte, len(proof.Nodes))}
		for i, n := range proof.Nodes {
			cp := make([]byte, len(n))
			copy(cp, n)
			bad.Nodes[i] = cp
		}
		last := bad.Nodes[len(bad.Nodes)-1]
		last[len(last)-1] ^= 0x01
		if v, err := VerifyProof(root, key, bad); err == nil && v != nil {
			t.Fatalf("tampered proof accepted with value %q", v)
		}
	})
	t.Run("missing node", func(t *testing.T) {
		if len(proof.Nodes) < 2 {
			t.Skip("proof too short to truncate")
		}
		bad := &Proof{Nodes: proof.Nodes[:len(proof.Nodes)-1]}
		if _, err := VerifyProof(root, key, bad); !errors.Is(err, ErrProofMissing) {
			t.Fatalf("truncated proof: got %v, want ErrProofMissing", err)
		}
	})
	t.Run("wrong root", func(t *testing.T) {
		var badRoot [32]byte
		badRoot[0] = 0xde
		if _, err := VerifyProof(badRoot, key, proof); err == nil {
			t.Fatal("proof verified against wrong root")
		}
	})
	t.Run("empty proof", func(t *testing.T) {
		if _, err := VerifyProof(root, key, &Proof{}); !errors.Is(err, ErrProofMissing) {
			t.Fatalf("empty proof: got %v", err)
		}
	})
}

func TestProofAgainstEmptyTrie(t *testing.T) {
	v, err := VerifyProof(EmptyRoot, []byte("anything"), &Proof{})
	if err != nil || v != nil {
		t.Fatalf("empty-trie absence proof: v=%q err=%v", v, err)
	}
}

func TestSecureTrie(t *testing.T) {
	st := NewSecure()
	if err := st.Put([]byte("account-1"), []byte("state-1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("account-2"), []byte("state-2")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get([]byte("account-1"))
	if err != nil || string(got) != "state-1" {
		t.Fatalf("secure Get: %q, %v", got, err)
	}
	root := st.Hash()
	proof, err := st.Prove([]byte("account-2"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := VerifySecureProof(root, []byte("account-2"), proof)
	if err != nil || string(v) != "state-2" {
		t.Fatalf("secure proof: %q, %v", v, err)
	}
	if err := st.Delete([]byte("account-1")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

// Property: the trie agrees with a reference map under a random
// operation sequence, and its root is a pure function of contents.
func TestQuickTrieMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[string]string{}
		for op := 0; op < 300; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(60))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Intn(1000))
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				ref[k] = v
			case 2:
				err := tr.Delete([]byte(k))
				_, existed := ref[k]
				if existed != (err == nil) {
					return false
				}
				delete(ref, k)
			}
		}
		// Contents must agree.
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, err := tr.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		// Root must equal a fresh trie of the same contents.
		fresh := New()
		for k, v := range ref {
			if err := fresh.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		return tr.Hash() == fresh.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every key in a random trie yields a verifying proof, and a
// proof never verifies a different value.
func TestQuickProofs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		n := 20 + rng.Intn(80)
		keys := make([][]byte, n)
		for i := range keys {
			k := make([]byte, 4+rng.Intn(12))
			rng.Read(k)
			keys[i] = k
			if err := tr.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
				return false
			}
		}
		root := tr.Hash()
		for i, k := range keys {
			proof, err := tr.Prove(k)
			if err != nil {
				return false
			}
			v, err := VerifyProof(root, k, proof)
			if err != nil {
				return false
			}
			// Duplicate random keys may overwrite; just require the
			// proven value to match the current trie value.
			cur, err := tr.Get(k)
			if err != nil || !bytes.Equal(v, cur) {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTriePut(b *testing.B) {
	tr := New()
	var k [8]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i))
		if err := tr.Put(k[:], k[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrieHash1000(b *testing.B) {
	tr := New()
	var k [8]byte
	for i := 0; i < 1000; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i))
		if err := tr.Put(k[:], k[:]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Hash()
	}
}

func BenchmarkProve(b *testing.B) {
	tr := New()
	var k [8]byte
	for i := 0; i < 1000; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i))
		if err := tr.Put(k[:], k[:]); err != nil {
			b.Fatal(err)
		}
	}
	binary.BigEndian.PutUint64(k[:], 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Prove(k[:]); err != nil {
			b.Fatal(err)
		}
	}
}
