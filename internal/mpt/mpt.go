// Package mpt implements Ethereum's hexary Merkle Patricia Trie,
// the authenticated data structure backing the world state. It supports
// insert/get/delete, deterministic root hashing, and Merkle proof
// generation and verification (used by HarDTAPE during block sync,
// step 11 of the paper's workflow).
package mpt

import (
	"bytes"
	"errors"
	"fmt"

	"hardtape/internal/keccak"
	"hardtape/internal/rlp"
)

// Common errors.
var (
	ErrNotFound     = errors.New("mpt: key not found")
	ErrBadProof     = errors.New("mpt: invalid merkle proof")
	ErrCorruptTrie  = errors.New("mpt: corrupt trie node")
	ErrEmptyKey     = errors.New("mpt: empty key")
	ErrEmptyValue   = errors.New("mpt: empty value (use Delete)")
	ErrProofMissing = errors.New("mpt: proof node missing")
)

// EmptyRoot is the root hash of an empty trie:
// keccak256(rlp("")) = keccak256(0x80).
var EmptyRoot = [32]byte(keccak.Sum256([]byte{0x80}))

// node is the interface implemented by the four trie node types.
type node interface{ isNode() }

type (
	// leafNode terminates a path: key is the remaining nibble suffix.
	leafNode struct {
		key   []byte // nibbles
		value []byte
	}
	// extensionNode compresses a shared nibble run.
	extensionNode struct {
		key   []byte // nibbles
		child node
	}
	// branchNode fans out on one nibble; value holds a terminating
	// value when a key ends exactly here.
	branchNode struct {
		children [16]node
		value    []byte
	}
)

func (*leafNode) isNode()      {}
func (*extensionNode) isNode() {}
func (*branchNode) isNode()    {}

// Trie is an in-memory Merkle Patricia Trie. The zero value is an empty
// trie ready for use. Trie is not safe for concurrent mutation.
type Trie struct {
	root node
}

// New returns an empty trie.
func New() *Trie {
	return &Trie{}
}

// keyToNibbles converts a byte key into its nibble expansion.
func keyToNibbles(key []byte) []byte {
	nibbles := make([]byte, len(key)*2)
	for i, b := range key {
		nibbles[i*2] = b >> 4
		nibbles[i*2+1] = b & 0x0f
	}
	return nibbles
}

// hexPrefix encodes nibbles with the HP flag byte (odd length, leaf).
func hexPrefix(nibbles []byte, leaf bool) []byte {
	var flag byte
	if leaf {
		flag = 2
	}
	if len(nibbles)%2 == 1 {
		out := make([]byte, (len(nibbles)+1)/2)
		out[0] = (flag+1)<<4 | nibbles[0]
		for i := 1; i < len(nibbles); i += 2 {
			out[(i+1)/2] = nibbles[i]<<4 | nibbles[i+1]
		}
		return out
	}
	out := make([]byte, len(nibbles)/2+1)
	out[0] = flag << 4
	for i := 0; i < len(nibbles); i += 2 {
		out[i/2+1] = nibbles[i]<<4 | nibbles[i+1]
	}
	return out
}

// decodeHexPrefix reverses hexPrefix, returning nibbles and the leaf flag.
func decodeHexPrefix(b []byte) (nibbles []byte, leaf bool, err error) {
	if len(b) == 0 {
		return nil, false, ErrCorruptTrie
	}
	flag := b[0] >> 4
	if flag > 3 {
		return nil, false, ErrCorruptTrie
	}
	leaf = flag >= 2
	odd := flag&1 == 1
	if odd {
		nibbles = append(nibbles, b[0]&0x0f)
	}
	for _, c := range b[1:] {
		nibbles = append(nibbles, c>>4, c&0x0f)
	}
	return nibbles, leaf, nil
}

// Put inserts or updates key → value. Empty values are rejected
// (tries encode absence as deletion, matching Ethereum semantics).
func (t *Trie) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(value) == 0 {
		return ErrEmptyValue
	}
	v := make([]byte, len(value))
	copy(v, value)
	t.root = insert(t.root, keyToNibbles(key), v)
	return nil
}

// Get retrieves the value for key, or ErrNotFound.
func (t *Trie) Get(key []byte) ([]byte, error) {
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	v := lookup(t.root, keyToNibbles(key))
	if v == nil {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Delete removes key. Deleting a missing key returns ErrNotFound.
func (t *Trie) Delete(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	newRoot, deleted := remove(t.root, keyToNibbles(key))
	if !deleted {
		return ErrNotFound
	}
	t.root = newRoot
	return nil
}

// Hash returns the trie's Merkle root.
func (t *Trie) Hash() [32]byte {
	if t.root == nil {
		return EmptyRoot
	}
	enc := encodeNode(t.root)
	var h [32]byte
	keccak.Sum256Into(h[:], enc)
	return h
}

// Len walks the trie and counts stored values (test/diagnostic helper).
func (t *Trie) Len() int {
	return countValues(t.root)
}

func countValues(n node) int {
	switch n := n.(type) {
	case nil:
		return 0
	case *leafNode:
		return 1
	case *extensionNode:
		return countValues(n.child)
	case *branchNode:
		total := 0
		if n.value != nil {
			total = 1
		}
		for _, c := range n.children {
			total += countValues(c)
		}
		return total
	default:
		return 0
	}
}

// insert adds value at nibble path key under n.
func insert(n node, key, value []byte) node {
	switch n := n.(type) {
	case nil:
		return &leafNode{key: key, value: value}

	case *leafNode:
		common := commonPrefix(n.key, key)
		if common == len(n.key) && common == len(key) {
			return &leafNode{key: key, value: value}
		}
		branch := &branchNode{}
		// Existing leaf's remainder.
		if common == len(n.key) {
			branch.value = n.value
		} else {
			branch.children[n.key[common]] = &leafNode{key: n.key[common+1:], value: n.value}
		}
		// New value's remainder.
		if common == len(key) {
			branch.value = value
		} else {
			branch.children[key[common]] = &leafNode{key: key[common+1:], value: value}
		}
		if common == 0 {
			return branch
		}
		return &extensionNode{key: key[:common], child: branch}

	case *extensionNode:
		common := commonPrefix(n.key, key)
		if common == len(n.key) {
			return &extensionNode{key: n.key, child: insert(n.child, key[common:], value)}
		}
		branch := &branchNode{}
		// Old extension's remainder.
		if common+1 == len(n.key) {
			branch.children[n.key[common]] = n.child
		} else {
			branch.children[n.key[common]] = &extensionNode{key: n.key[common+1:], child: n.child}
		}
		// New key's remainder.
		if common == len(key) {
			branch.value = value
		} else {
			branch.children[key[common]] = &leafNode{key: key[common+1:], value: value}
		}
		if common == 0 {
			return branch
		}
		return &extensionNode{key: key[:common], child: branch}

	case *branchNode:
		nb := n.clone()
		if len(key) == 0 {
			nb.value = value
			return nb
		}
		nb.children[key[0]] = insert(nb.children[key[0]], key[1:], value)
		return nb

	default:
		panic(fmt.Sprintf("mpt: unknown node type %T", n))
	}
}

func (b *branchNode) clone() *branchNode {
	nb := *b
	return &nb
}

// lookup returns the value at nibble path key, or nil.
func lookup(n node, key []byte) []byte {
	switch n := n.(type) {
	case nil:
		return nil
	case *leafNode:
		if bytes.Equal(n.key, key) {
			return n.value
		}
		return nil
	case *extensionNode:
		if len(key) < len(n.key) || !bytes.Equal(n.key, key[:len(n.key)]) {
			return nil
		}
		return lookup(n.child, key[len(n.key):])
	case *branchNode:
		if len(key) == 0 {
			return n.value
		}
		return lookup(n.children[key[0]], key[1:])
	default:
		return nil
	}
}

// remove deletes the value at nibble path key, returning the new
// subtree and whether a deletion happened.
func remove(n node, key []byte) (node, bool) {
	switch n := n.(type) {
	case nil:
		return nil, false

	case *leafNode:
		if bytes.Equal(n.key, key) {
			return nil, true
		}
		return n, false

	case *extensionNode:
		if len(key) < len(n.key) || !bytes.Equal(n.key, key[:len(n.key)]) {
			return n, false
		}
		child, deleted := remove(n.child, key[len(n.key):])
		if !deleted {
			return n, false
		}
		return collapseExtension(n.key, child), true

	case *branchNode:
		nb := n.clone()
		if len(key) == 0 {
			if nb.value == nil {
				return n, false
			}
			nb.value = nil
		} else {
			child, deleted := remove(nb.children[key[0]], key[1:])
			if !deleted {
				return n, false
			}
			nb.children[key[0]] = child
		}
		return collapseBranch(nb), true

	default:
		panic(fmt.Sprintf("mpt: unknown node type %T", n))
	}
}

// collapseExtension merges an extension with its (possibly reshaped)
// child after a delete.
func collapseExtension(prefix []byte, child node) node {
	switch c := child.(type) {
	case nil:
		return nil
	case *leafNode:
		return &leafNode{key: concatNibbles(prefix, c.key), value: c.value}
	case *extensionNode:
		return &extensionNode{key: concatNibbles(prefix, c.key), child: c.child}
	default:
		return &extensionNode{key: prefix, child: child}
	}
}

// collapseBranch simplifies a branch that may have dropped to one
// remaining child or value.
func collapseBranch(b *branchNode) node {
	liveIdx := -1
	liveCount := 0
	for i, c := range b.children {
		if c != nil {
			liveIdx = i
			liveCount++
		}
	}
	switch {
	case liveCount == 0 && b.value == nil:
		return nil
	case liveCount == 0:
		return &leafNode{key: nil, value: b.value}
	case liveCount == 1 && b.value == nil:
		return collapseExtension([]byte{byte(liveIdx)}, b.children[liveIdx])
	default:
		return b
	}
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func concatNibbles(a, b []byte) []byte {
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// encodeNode RLP-encodes a node with embedded short children
// (< 32 bytes embed raw; otherwise a 32-byte hash reference).
func encodeNode(n node) []byte {
	return nodeItem(n).Encode()
}

// nodeRef returns the RLP item used to reference n from a parent.
func nodeRef(n node) *rlp.Item {
	if n == nil {
		return rlp.String(nil)
	}
	enc := encodeNode(n)
	if len(enc) < 32 {
		// Short nodes embed directly; re-decode to an item tree.
		it, err := rlp.Decode(enc)
		if err != nil {
			panic(fmt.Sprintf("mpt: re-decode of own encoding failed: %v", err))
		}
		return it
	}
	var h [32]byte
	keccak.Sum256Into(h[:], enc)
	return rlp.String(h[:])
}

// nodeItem returns the canonical RLP item for a node.
func nodeItem(n node) *rlp.Item {
	switch n := n.(type) {
	case *leafNode:
		return rlp.List(rlp.String(hexPrefix(n.key, true)), rlp.String(n.value))
	case *extensionNode:
		return rlp.List(rlp.String(hexPrefix(n.key, false)), nodeRef(n.child))
	case *branchNode:
		items := make([]*rlp.Item, 17)
		for i, c := range n.children {
			items[i] = nodeRef(c)
		}
		items[16] = rlp.String(n.value)
		return rlp.List(items...)
	default:
		panic(fmt.Sprintf("mpt: unknown node type %T", n))
	}
}
