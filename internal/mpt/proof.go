package mpt

import (
	"bytes"

	"hardtape/internal/keccak"
	"hardtape/internal/rlp"
)

// Proof is an ordered list of RLP-encoded trie nodes from the root down
// to (and including) the node that proves presence or absence of a key.
type Proof struct {
	Nodes [][]byte
}

// Prove builds a Merkle proof for key. The proof verifies against the
// current root hash whether the key is present (yielding its value) or
// absent (yielding nil).
func (t *Trie) Prove(key []byte) (*Proof, error) {
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	proof := &Proof{}
	n := t.root
	nibbles := keyToNibbles(key)
	for {
		if n == nil {
			return proof, nil
		}
		enc := encodeNode(n)
		// Only standalone (hashed) nodes go into the proof; embedded
		// short nodes travel inside their parent encoding. The root is
		// always included.
		if len(enc) >= 32 || len(proof.Nodes) == 0 {
			proof.Nodes = append(proof.Nodes, enc)
		}
		switch node := n.(type) {
		case *leafNode:
			return proof, nil
		case *extensionNode:
			if len(nibbles) < len(node.key) || !bytes.Equal(node.key, nibbles[:len(node.key)]) {
				return proof, nil
			}
			nibbles = nibbles[len(node.key):]
			n = node.child
		case *branchNode:
			if len(nibbles) == 0 {
				return proof, nil
			}
			next := node.children[nibbles[0]]
			nibbles = nibbles[1:]
			n = next
		}
	}
}

// VerifyProof checks proof against root for key. On success it returns
// the proven value (nil for a valid proof of absence).
func VerifyProof(root [32]byte, key []byte, proof *Proof) ([]byte, error) {
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	if proof == nil || len(proof.Nodes) == 0 {
		if root == EmptyRoot {
			return nil, nil
		}
		return nil, ErrProofMissing
	}
	// Index nodes by hash.
	byHash := make(map[[32]byte][]byte, len(proof.Nodes))
	for _, enc := range proof.Nodes {
		var h [32]byte
		keccak.Sum256Into(h[:], enc)
		byHash[h] = enc
	}

	want := root
	nibbles := keyToNibbles(key)
	enc, ok := byHash[want]
	if !ok {
		return nil, ErrProofMissing
	}
	for {
		item, err := rlp.Decode(enc)
		if err != nil {
			return nil, ErrBadProof
		}
		value, nextRef, consumed, err := stepProof(item, nibbles)
		if err != nil {
			return nil, err
		}
		if nextRef == nil {
			return value, nil
		}
		nibbles = nibbles[consumed:]
		// nextRef is either an embedded node item or a 32-byte hash.
		if embedded, childErr := nextRef.Children(); childErr == nil {
			_ = embedded
			enc = nextRef.Encode()
			continue
		}
		hashBytes, err := nextRef.Str()
		if err != nil {
			return nil, ErrBadProof
		}
		if len(hashBytes) == 0 {
			// Path ends in an empty slot: proof of absence.
			return nil, nil
		}
		if len(hashBytes) != 32 {
			// Short embedded node encoded as a string is impossible in
			// canonical tries.
			return nil, ErrBadProof
		}
		copy(want[:], hashBytes)
		enc, ok = byHash[want]
		if !ok {
			return nil, ErrProofMissing
		}
	}
}

// stepProof interprets one decoded node against the remaining nibbles.
// It returns either a terminal value (nextRef == nil) or the reference
// to follow plus how many nibbles were consumed.
func stepProof(item *rlp.Item, nibbles []byte) (value []byte, nextRef *rlp.Item, consumed int, err error) {
	fields, err := item.Children()
	if err != nil {
		return nil, nil, 0, ErrBadProof
	}
	switch len(fields) {
	case 2: // leaf or extension
		hp, err := fields[0].Str()
		if err != nil {
			return nil, nil, 0, ErrBadProof
		}
		key, leaf, err := decodeHexPrefix(hp)
		if err != nil {
			return nil, nil, 0, ErrBadProof
		}
		if leaf {
			if bytes.Equal(key, nibbles) {
				v, err := fields[1].Str()
				if err != nil {
					return nil, nil, 0, ErrBadProof
				}
				return v, nil, 0, nil
			}
			return nil, nil, 0, nil // proven absent
		}
		if len(nibbles) < len(key) || !bytes.Equal(key, nibbles[:len(key)]) {
			return nil, nil, 0, nil // diverges: absent
		}
		return nil, fields[1], len(key), nil

	case 17: // branch
		if len(nibbles) == 0 {
			v, err := fields[16].Str()
			if err != nil {
				return nil, nil, 0, ErrBadProof
			}
			if len(v) == 0 {
				return nil, nil, 0, nil
			}
			return v, nil, 0, nil
		}
		return nil, fields[nibbles[0]], 1, nil

	default:
		return nil, nil, 0, ErrBadProof
	}
}

// SecureTrie wraps a Trie, hashing keys with keccak256 before use —
// the structure Ethereum uses for both the account trie and each
// account's storage trie. It also keeps the preimages so proofs can be
// requested by raw key.
type SecureTrie struct {
	trie Trie
}

// NewSecure returns an empty secure trie.
func NewSecure() *SecureTrie {
	return &SecureTrie{}
}

// Put inserts raw key → value (key is keccak-hashed internally).
func (s *SecureTrie) Put(key, value []byte) error {
	h := keccak.Sum256(key)
	return s.trie.Put(h[:], value)
}

// Get retrieves by raw key.
func (s *SecureTrie) Get(key []byte) ([]byte, error) {
	h := keccak.Sum256(key)
	return s.trie.Get(h[:])
}

// Delete removes by raw key.
func (s *SecureTrie) Delete(key []byte) error {
	h := keccak.Sum256(key)
	return s.trie.Delete(h[:])
}

// Hash returns the Merkle root.
func (s *SecureTrie) Hash() [32]byte {
	return s.trie.Hash()
}

// Len counts stored values.
func (s *SecureTrie) Len() int {
	return s.trie.Len()
}

// Prove builds a proof for the raw key.
func (s *SecureTrie) Prove(key []byte) (*Proof, error) {
	h := keccak.Sum256(key)
	return s.trie.Prove(h[:])
}

// VerifySecureProof verifies a SecureTrie proof for a raw key.
func VerifySecureProof(root [32]byte, key []byte, proof *Proof) ([]byte, error) {
	h := keccak.Sum256(key)
	return VerifyProof(root, h[:], proof)
}
