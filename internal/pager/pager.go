// Package pager reassembles the Ethereum world state into the fixed
// 1 KB pages HarDTAPE stores in its Path ORAM (paper §IV-D):
//
//   - contract bytecode is split into 1 KB code pages;
//   - storage records are grouped 32-per-page by consecutive keys
//     (Solidity assigns adjacent slots to adjacent keys);
//   - per-account metadata (balance, nonce, code length, code hash)
//     occupies one page.
//
// Both query types therefore produce identical 1 KB responses, closing
// the response-size side channel the paper describes.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hardtape/internal/oram"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// PageSize is the fixed page size (equals the ORAM block size).
const PageSize = oram.BlockSize

// RecordsPerPage is how many 32-byte storage records share one page.
const RecordsPerPage = 32

// PageKind discriminates page types. The kind never leaves the trusted
// side: on the wire every page is an opaque 1 KB ORAM block.
type PageKind uint8

// Page kinds.
const (
	KindAccountMeta PageKind = iota + 1
	KindStorageGroup
	KindCodePage
)

// PageKey identifies one page of the re-assembled world state.
type PageKey struct {
	Kind PageKind
	// Addr is the account (meta and storage pages).
	Addr types.Address
	// Group is the storage group id: key with the low 5 bits cleared
	// (i.e. key / 32), identifying 32 consecutive slots.
	Group types.Hash
	// CodeHash identifies the contract for code pages.
	CodeHash types.Hash
	// Index is the code page index.
	Index uint32
}

// Errors.
var (
	ErrPageNotFound = errors.New("pager: page not found")
	ErrBadPage      = errors.New("pager: malformed page")
)

// Backend stores opaque fixed-size pages. The ORAM client implements
// the oblivious version; PlainBackend is the prefetched-to-memory
// variant used by the paper's -raw/-E/-ES configurations.
type Backend interface {
	ReadPage(key PageKey) ([]byte, error)
	WritePage(key PageKey, data []byte) error
	// ReadPages fetches many pages in as few backend round trips as
	// the transport allows (one per batch chunk on the ORAM). The
	// result is aligned with keys; missing pages are nil entries, not
	// errors — the trusted dictionary already knows absence without
	// touching the backend.
	ReadPages(keys []PageKey) ([][]byte, error)
	// WritePages stores many pages in as few backend round trips as
	// the transport allows.
	WritePages(keys []PageKey, pages [][]byte) error
}

// PlainBackend is a direct in-memory page store (no obliviousness).
type PlainBackend struct {
	pages map[PageKey][]byte
}

var _ Backend = (*PlainBackend)(nil)

// NewPlainBackend returns an empty plain store.
func NewPlainBackend() *PlainBackend {
	return &PlainBackend{pages: make(map[PageKey][]byte)}
}

// ReadPage implements Backend.
func (p *PlainBackend) ReadPage(key PageKey) ([]byte, error) {
	page, ok := p.pages[key]
	if !ok {
		return nil, ErrPageNotFound
	}
	out := make([]byte, len(page))
	copy(out, page)
	return out, nil
}

// WritePage implements Backend.
func (p *PlainBackend) WritePage(key PageKey, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("%w: size %d", ErrBadPage, len(data))
	}
	cp := make([]byte, PageSize)
	copy(cp, data)
	p.pages[key] = cp
	return nil
}

// ReadPages implements Backend.
func (p *PlainBackend) ReadPages(keys []PageKey) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for i, key := range keys {
		page, err := p.ReadPage(key)
		if errors.Is(err, ErrPageNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[i] = page
	}
	return out, nil
}

// WritePages implements Backend.
func (p *PlainBackend) WritePages(keys []PageKey, pages [][]byte) error {
	if len(pages) != len(keys) {
		return fmt.Errorf("%w: %d pages for %d keys", ErrBadPage, len(pages), len(keys))
	}
	for i, key := range keys {
		if err := p.WritePage(key, pages[i]); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the stored page count.
func (p *PlainBackend) Len() int { return len(p.pages) }

// ORAMBackend maps page keys to dense ORAM block ids. The dictionary
// is trusted client state (like the position map); Ethereum's key
// space is sparse, so ids are assigned on first write.
type ORAMBackend struct {
	client oram.Accessor
	ids    map[PageKey]oram.BlockID
	next   oram.BlockID
}

var _ Backend = (*ORAMBackend)(nil)

// NewORAMBackend wraps an ORAM accessor — the single-tree Client or
// the sharded fan-out client; the pager is agnostic to the partition.
func NewORAMBackend(client oram.Accessor) *ORAMBackend {
	return &ORAMBackend{client: client, ids: make(map[PageKey]oram.BlockID)}
}

// ReadPage implements Backend. Unknown keys perform no ORAM access:
// the trusted dictionary already knows the page does not exist, so no
// information crosses the boundary.
func (o *ORAMBackend) ReadPage(key PageKey) ([]byte, error) {
	id, ok := o.ids[key]
	if !ok {
		return nil, ErrPageNotFound
	}
	data, err := o.client.Read(id)
	if errors.Is(err, oram.ErrNotFound) {
		return nil, ErrPageNotFound
	}
	return data, err
}

// WritePage implements Backend.
func (o *ORAMBackend) WritePage(key PageKey, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("%w: size %d", ErrBadPage, len(data))
	}
	id, ok := o.ids[key]
	if !ok {
		id = o.next
		o.next++
		o.ids[key] = id
	}
	return o.client.Write(id, data)
}

// oramBatchChunk caps one ORAM access batch: large enough to amortize
// the link RTT, small enough to bound the transient stash growth and
// stay under the wire's per-message path limit.
const oramBatchChunk = 16

// ReadPages implements Backend via the client's batched access path:
// every chunk of known pages costs one link round trip instead of one
// per page. Unknown keys contribute nil entries without any ORAM
// traffic (as in ReadPage, the trusted dictionary decides absence).
func (o *ORAMBackend) ReadPages(keys []PageKey) ([][]byte, error) {
	out := make([][]byte, len(keys))
	ids := make([]oram.BlockID, 0, len(keys))
	slots := make([]int, 0, len(keys))
	for i, key := range keys {
		if id, ok := o.ids[key]; ok {
			ids = append(ids, id)
			slots = append(slots, i)
		}
	}
	for start := 0; start < len(ids); start += oramBatchChunk {
		end := start + oramBatchChunk
		if end > len(ids) {
			end = len(ids)
		}
		data, err := o.client.ReadMany(ids[start:end])
		if err != nil {
			return nil, err
		}
		for j, page := range data {
			out[slots[start+j]] = page
		}
	}
	return out, nil
}

// WritePages implements Backend via the client's batched access path.
func (o *ORAMBackend) WritePages(keys []PageKey, pages [][]byte) error {
	if len(pages) != len(keys) {
		return fmt.Errorf("%w: %d pages for %d keys", ErrBadPage, len(pages), len(keys))
	}
	ops := make([]oram.BatchOp, 0, len(keys))
	for i, key := range keys {
		if len(pages[i]) != PageSize {
			return fmt.Errorf("%w: size %d", ErrBadPage, len(pages[i]))
		}
		id, ok := o.ids[key]
		if !ok {
			id = o.next
			o.next++
			o.ids[key] = id
		}
		ops = append(ops, oram.BatchOp{Op: oram.OpWrite, ID: id, Data: pages[i]})
	}
	for start := 0; start < len(ops); start += oramBatchChunk {
		end := start + oramBatchChunk
		if end > len(ops) {
			end = len(ops)
		}
		if _, err := o.client.AccessBatch(ops[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// Pages returns the number of mapped pages.
func (o *ORAMBackend) Pages() int { return len(o.ids) }

// AccountMeta is the K-V style account data (balance, nonce, code
// length, code hash) packed into one page.
type AccountMeta struct {
	Balance  *uint256.Int
	Nonce    uint64
	CodeLen  uint32
	CodeHash types.Hash
}

// encodeMeta packs AccountMeta into a page.
func encodeMeta(m *AccountMeta) []byte {
	page := make([]byte, PageSize)
	bal := m.Balance.Bytes32()
	copy(page[0:32], bal[:])
	binary.BigEndian.PutUint64(page[32:40], m.Nonce)
	binary.BigEndian.PutUint32(page[40:44], m.CodeLen)
	copy(page[44:76], m.CodeHash[:])
	return page
}

// decodeMeta unpacks a meta page.
func decodeMeta(page []byte) (*AccountMeta, error) {
	if len(page) != PageSize {
		return nil, ErrBadPage
	}
	return &AccountMeta{
		Balance:  new(uint256.Int).SetBytes(page[0:32]),
		Nonce:    binary.BigEndian.Uint64(page[32:40]),
		CodeLen:  binary.BigEndian.Uint32(page[40:44]),
		CodeHash: types.BytesToHash(page[44:76]),
	}, nil
}

// StorageGroupKey returns the group id for a storage key (low 5 bits
// cleared → 32 consecutive keys share a group).
func StorageGroupKey(key types.Hash) (group types.Hash, slot int) {
	return storageGroupKeyN(key, RecordsPerPage)
}

// storageGroupKeyN groups `gs` consecutive keys (gs a power of two
// ≤ 32). gs=1 disables grouping — the ablation baseline.
func storageGroupKeyN(key types.Hash, gs int) (group types.Hash, slot int) {
	group = key
	mask := byte(gs - 1)
	slot = int(group[31] & mask)
	group[31] &^= mask
	return group, slot
}

// Store is the trusted paging layer: it translates world-state reads
// and writes into fixed-size page operations on a Backend.
type Store struct {
	backend   Backend
	groupSize int
}

// NewStore wraps a backend with the paper's 32-records-per-page
// grouping.
func NewStore(backend Backend) *Store {
	return &Store{backend: backend, groupSize: RecordsPerPage}
}

// NewStoreGrouped wraps a backend with a custom group size (power of
// two in [1, 32]) — used by the grouping ablation.
func NewStoreGrouped(backend Backend, groupSize int) (*Store, error) {
	switch groupSize {
	case 1, 2, 4, 8, 16, 32:
		return &Store{backend: backend, groupSize: groupSize}, nil
	default:
		return nil, fmt.Errorf("pager: group size %d not a power of two in [1,32]", groupSize)
	}
}

// WriteAccountMeta stores an account's K-V data.
func (s *Store) WriteAccountMeta(addr types.Address, meta *AccountMeta) error {
	return s.backend.WritePage(PageKey{Kind: KindAccountMeta, Addr: addr}, encodeMeta(meta))
}

// ReadAccountMeta fetches an account's K-V data.
func (s *Store) ReadAccountMeta(addr types.Address) (*AccountMeta, error) {
	page, err := s.backend.ReadPage(PageKey{Kind: KindAccountMeta, Addr: addr})
	if err != nil {
		return nil, err
	}
	return decodeMeta(page)
}

// WriteStorageRecord writes one record, read-modify-writing its group
// page (creating it when absent).
func (s *Store) WriteStorageRecord(addr types.Address, key, value types.Hash) error {
	group, slot := storageGroupKeyN(key, s.groupSize)
	pk := PageKey{Kind: KindStorageGroup, Addr: addr, Group: group}
	page, err := s.backend.ReadPage(pk)
	if errors.Is(err, ErrPageNotFound) {
		page = make([]byte, PageSize)
	} else if err != nil {
		return err
	}
	copy(page[slot*32:(slot+1)*32], value[:])
	return s.backend.WritePage(pk, page)
}

// ReadStorageRecord reads one record. Absent groups return the zero
// hash (Ethereum semantics) with found=false.
func (s *Store) ReadStorageRecord(addr types.Address, key types.Hash) (types.Hash, bool, error) {
	group, slot := storageGroupKeyN(key, s.groupSize)
	page, err := s.backend.ReadPage(PageKey{Kind: KindStorageGroup, Addr: addr, Group: group})
	if errors.Is(err, ErrPageNotFound) {
		return types.Hash{}, false, nil
	}
	if err != nil {
		return types.Hash{}, false, err
	}
	return types.BytesToHash(page[slot*32 : (slot+1)*32]), true, nil
}

// GroupKey returns the group page identifier of a storage key under
// this store's grouping (records sharing it arrive in one page fetch).
func (s *Store) GroupKey(key types.Hash) types.Hash {
	g, _ := storageGroupKeyN(key, s.groupSize)
	return g
}

// WriteCode splits contract code into pages and stores them in one
// batched backend write (one round trip per batch chunk on the ORAM —
// this is block sync's hot path).
func (s *Store) WriteCode(codeHash types.Hash, code []byte) error {
	n := int(CodePages(uint32(len(code))))
	if n == 0 {
		n = 1
	}
	keys := make([]PageKey, n)
	pages := make([][]byte, n)
	for i := 0; i < n; i++ {
		page := make([]byte, PageSize)
		start := i * PageSize
		if start < len(code) {
			end := start + PageSize
			if end > len(code) {
				end = len(code)
			}
			copy(page, code[start:end])
		}
		keys[i] = PageKey{Kind: KindCodePage, CodeHash: codeHash, Index: uint32(i)}
		pages[i] = page
	}
	return s.backend.WritePages(keys, pages)
}

// CodePages returns how many pages a code of the given length occupies.
func CodePages(codeLen uint32) uint32 {
	if codeLen == 0 {
		return 0
	}
	return (codeLen + PageSize - 1) / PageSize
}

// ReadCodePage fetches one code page.
func (s *Store) ReadCodePage(codeHash types.Hash, index uint32) ([]byte, error) {
	return s.backend.ReadPage(PageKey{Kind: KindCodePage, CodeHash: codeHash, Index: index})
}

// ReadCodePages fetches many code pages of one contract through the
// backend's batched read path. The result is aligned with indices;
// missing pages are nil entries.
func (s *Store) ReadCodePages(codeHash types.Hash, indices []uint32) ([][]byte, error) {
	keys := make([]PageKey, len(indices))
	for i, idx := range indices {
		keys[i] = PageKey{Kind: KindCodePage, CodeHash: codeHash, Index: idx}
	}
	return s.backend.ReadPages(keys)
}

// StorageRecord is one key/value pair for WriteStorageRecords.
type StorageRecord struct {
	Key   types.Hash
	Value types.Hash
}

// WriteStorageRecords writes a set of records for one account with
// batched backend traffic: the affected group pages are fetched in one
// batched read, modified in place, and written back in one batched
// write — block sync pays ~2 round trips per account instead of 2 per
// record.
func (s *Store) WriteStorageRecords(addr types.Address, recs []StorageRecord) error {
	if len(recs) == 0 {
		return nil
	}
	keys := make([]PageKey, 0, len(recs))
	keyIdx := make(map[PageKey]int, len(recs))
	slots := make([]int, len(recs))
	for i, rec := range recs {
		group, slot := storageGroupKeyN(rec.Key, s.groupSize)
		pk := PageKey{Kind: KindStorageGroup, Addr: addr, Group: group}
		j, ok := keyIdx[pk]
		if !ok {
			j = len(keys)
			keyIdx[pk] = j
			keys = append(keys, pk)
		}
		slots[i] = j*RecordsPerPage + slot
	}
	pages, err := s.backend.ReadPages(keys)
	if err != nil {
		return err
	}
	for i := range pages {
		if pages[i] == nil {
			pages[i] = make([]byte, PageSize)
		}
	}
	for i, rec := range recs {
		page := pages[slots[i]/RecordsPerPage]
		slot := slots[i] % RecordsPerPage
		copy(page[slot*32:(slot+1)*32], rec.Value[:])
	}
	return s.backend.WritePages(keys, pages)
}

// ReadCode reassembles full contract code of a known length.
func (s *Store) ReadCode(codeHash types.Hash, codeLen uint32) ([]byte, error) {
	if codeLen == 0 {
		return nil, nil
	}
	out := make([]byte, 0, codeLen)
	for i := uint32(0); i < CodePages(codeLen); i++ {
		page, err := s.ReadCodePage(codeHash, i)
		if err != nil {
			return nil, fmt.Errorf("pager: code page %d: %w", i, err)
		}
		out = append(out, page...)
	}
	return out[:codeLen], nil
}
