package pager

import (
	"crypto/rand"
	"encoding/binary"
	"time"

	"hardtape/internal/types"
)

// CodeRef identifies one code page awaiting prefetch.
type CodeRef struct {
	CodeHash types.Hash
	Index    uint32
}

// Prefetcher implements the paper's pagewise code prefetching
// (§IV-D problem 3): instead of bursting all code pages of a frame at
// once — which would distinguish Code queries from sporadic storage
// queries — code pages are issued one at a time on a randomized
// interval timer of roughly half the average gap between real
// queries. The adversary then observes an approximately uniform query
// cadence regardless of type.
type Prefetcher struct {
	queue []CodeRef
	// avgGap is the exponentially weighted average between real
	// queries (virtual time).
	avgGap time.Duration
	// lastQuery is the virtual time of the previous real query.
	lastQuery time.Duration
	seenQuery bool
	// nextDue is the virtual deadline of the interval timer.
	nextDue time.Duration
	// randFn samples a uniform value in [0, n); defaults to the
	// secure RNG (the Manufacturer-provisioned randomness source).
	randFn func(n int64) int64
	// stats
	issued uint64
}

// NewPrefetcher returns an idle prefetcher.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{randFn: secureRandInt}
}

// secureRandInt samples uniformly from [0, n) using crypto/rand.
func secureRandInt(n int64) int64 {
	if n <= 0 {
		return 0
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic("pager: rng failure: " + err.Error())
	}
	v := int64(binary.BigEndian.Uint64(buf[:]) >> 1)
	return v % n
}

// SetRandFn overrides the randomness source (tests only).
func (p *Prefetcher) SetRandFn(fn func(n int64) int64) { p.randFn = fn }

// QueueCode enqueues all pages of a contract for background prefetch.
// The first page is NOT queued: the Hypervisor fetches it immediately
// so execution can start (it is indistinguishable from a K-V query
// anyway, since responses are fixed-size).
func (p *Prefetcher) QueueCode(codeHash types.Hash, codeLen uint32) {
	for i := uint32(1); i < CodePages(codeLen); i++ {
		p.queue = append(p.queue, CodeRef{CodeHash: codeHash, Index: i})
	}
}

// Pending returns the number of queued pages.
func (p *Prefetcher) Pending() int { return len(p.queue) }

// Issued returns how many prefetches have been popped.
func (p *Prefetcher) Issued() uint64 { return p.issued }

// NotifyQuery records a real world-state query at virtual time now,
// updating the average gap and re-arming the interval timer to a
// random value around half the average gap.
func (p *Prefetcher) NotifyQuery(now time.Duration) {
	if p.seenQuery {
		gap := now - p.lastQuery
		if gap < 0 {
			gap = 0
		}
		if p.avgGap == 0 {
			p.avgGap = gap
		} else {
			// EWMA with alpha = 1/8.
			p.avgGap += (gap - p.avgGap) / 8
		}
	}
	p.seenQuery = true
	p.lastQuery = now
	p.arm(now)
}

// arm sets the next deadline to now + U(¼·avg, ¾·avg), i.e. about half
// the average gap.
func (p *Prefetcher) arm(now time.Duration) {
	base := p.avgGap / 4
	span := p.avgGap / 2
	if span <= 0 {
		// No gap estimate yet: fire on the next poll.
		p.nextDue = now
		return
	}
	p.nextDue = now + base + time.Duration(p.randFn(int64(span)))
}

// PopDue returns the next code page to prefetch if the interval timer
// has expired and pages are pending. After a pop the timer re-arms.
func (p *Prefetcher) PopDue(now time.Duration) (CodeRef, bool) {
	if len(p.queue) == 0 || (p.seenQuery && now < p.nextDue) {
		return CodeRef{}, false
	}
	ref := p.queue[0]
	p.queue = p.queue[1:]
	p.issued++
	p.arm(now)
	return ref, true
}

// Reset clears all prefetcher state (bundle release, step 10).
func (p *Prefetcher) Reset() {
	p.queue = nil
	p.avgGap = 0
	p.seenQuery = false
	p.nextDue = 0
	p.issued = 0
}
