package pager

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hardtape/internal/oram"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

func addr(b byte) types.Address {
	var a types.Address
	a[19] = b
	return a
}

func hashOf(b byte) types.Hash {
	var h types.Hash
	h[31] = b
	return h
}

func newORAMStore(t testing.TB) *Store {
	t.Helper()
	srv, err := oram.NewMemServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, oram.KeySize)
	cli, err := oram.NewClient(srv, key)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(NewORAMBackend(cli))
}

func stores(t *testing.T) map[string]*Store {
	return map[string]*Store{
		"plain": NewStore(NewPlainBackend()),
		"oram":  newORAMStore(t),
	}
}

func TestAccountMetaRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			meta := &AccountMeta{
				Balance:  uint256.NewInt(123456789),
				Nonce:    42,
				CodeLen:  5000,
				CodeHash: hashOf(0xcc),
			}
			if err := s.WriteAccountMeta(addr(1), meta); err != nil {
				t.Fatal(err)
			}
			got, err := s.ReadAccountMeta(addr(1))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Balance.Eq(meta.Balance) || got.Nonce != 42 ||
				got.CodeLen != 5000 || got.CodeHash != meta.CodeHash {
				t.Fatalf("meta round trip: %+v", got)
			}
			if _, err := s.ReadAccountMeta(addr(9)); !errors.Is(err, ErrPageNotFound) {
				t.Fatalf("missing meta: %v", err)
			}
		})
	}
}

func TestStorageGrouping(t *testing.T) {
	// Keys 0..31 share one group; key 32 starts another.
	g0, s0 := StorageGroupKey(hashOf(0))
	g5, s5 := StorageGroupKey(hashOf(5))
	g31, s31 := StorageGroupKey(hashOf(31))
	g32, s32 := StorageGroupKey(hashOf(32))
	if g0 != g5 || g5 != g31 {
		t.Fatal("keys 0..31 should share a group")
	}
	if g32 == g0 {
		t.Fatal("key 32 should start a new group")
	}
	if s0 != 0 || s5 != 5 || s31 != 31 || s32 != 0 {
		t.Fatalf("slots: %d %d %d %d", s0, s5, s31, s32)
	}
}

func TestStorageRecords(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			a := addr(2)
			// Two records in the same group + one in another group.
			if err := s.WriteStorageRecord(a, hashOf(1), hashOf(0x11)); err != nil {
				t.Fatal(err)
			}
			if err := s.WriteStorageRecord(a, hashOf(2), hashOf(0x22)); err != nil {
				t.Fatal(err)
			}
			if err := s.WriteStorageRecord(a, hashOf(200), hashOf(0x33)); err != nil {
				t.Fatal(err)
			}
			for _, tt := range []struct {
				key  types.Hash
				want types.Hash
			}{
				{hashOf(1), hashOf(0x11)},
				{hashOf(2), hashOf(0x22)},
				{hashOf(200), hashOf(0x33)},
			} {
				got, found, err := s.ReadStorageRecord(a, tt.key)
				if err != nil || !found {
					t.Fatalf("read %s: found=%v err=%v", tt.key, found, err)
				}
				if got != tt.want {
					t.Fatalf("read %s = %s, want %s", tt.key, got, tt.want)
				}
			}
			// Unset key in an existing group reads zero (found).
			got, found, err := s.ReadStorageRecord(a, hashOf(3))
			if err != nil || !found || !got.IsZero() {
				t.Fatalf("unset-in-group: %s found=%v err=%v", got, found, err)
			}
			// Key in a missing group: not found, zero.
			got, found, err = s.ReadStorageRecord(a, hashOf(100))
			if err != nil || found || !got.IsZero() {
				t.Fatalf("missing group: %s found=%v err=%v", got, found, err)
			}
		})
	}
}

func TestCodePaging(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			// 2.5 pages of code.
			code := make([]byte, 2*PageSize+512)
			for i := range code {
				code[i] = byte(i * 31)
			}
			ch := hashOf(0xab)
			if err := s.WriteCode(ch, code); err != nil {
				t.Fatal(err)
			}
			if CodePages(uint32(len(code))) != 3 {
				t.Fatalf("CodePages = %d", CodePages(uint32(len(code))))
			}
			back, err := s.ReadCode(ch, uint32(len(code)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, code) {
				t.Fatal("code round trip mismatch")
			}
			// Single page fetch has fixed size.
			page, err := s.ReadCodePage(ch, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(page) != PageSize {
				t.Fatalf("page size %d", len(page))
			}
			// Missing page.
			if _, err := s.ReadCodePage(ch, 3); !errors.Is(err, ErrPageNotFound) {
				t.Fatalf("missing page: %v", err)
			}
		})
	}
}

func TestCodePagesEdge(t *testing.T) {
	if CodePages(0) != 0 {
		t.Error("CodePages(0)")
	}
	if CodePages(1) != 1 || CodePages(PageSize) != 1 || CodePages(PageSize+1) != 2 {
		t.Error("CodePages boundaries")
	}
	// Empty code writes a single zero page without error.
	s := NewStore(NewPlainBackend())
	if err := s.WriteCode(hashOf(1), nil); err != nil {
		t.Fatal(err)
	}
	code, err := s.ReadCode(hashOf(1), 0)
	if err != nil || code != nil {
		t.Fatalf("empty code: %x %v", code, err)
	}
}

func TestResponseSizesAreUniform(t *testing.T) {
	// The side-channel defense: every backend response is exactly 1 KB
	// regardless of query type.
	s := newORAMStore(t)
	a := addr(3)
	if err := s.WriteAccountMeta(a, &AccountMeta{Balance: uint256.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteStorageRecord(a, hashOf(1), hashOf(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCode(hashOf(0xcd), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	backend := s.backend
	for name, key := range map[string]PageKey{
		"meta":    {Kind: KindAccountMeta, Addr: a},
		"storage": {Kind: KindStorageGroup, Addr: a, Group: mustGroup(hashOf(1))},
		"code":    {Kind: KindCodePage, CodeHash: hashOf(0xcd), Index: 0},
	} {
		page, err := backend.ReadPage(key)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(page) != PageSize {
			t.Fatalf("%s response size %d != %d", name, len(page), PageSize)
		}
	}
}

func mustGroup(key types.Hash) types.Hash {
	g, _ := StorageGroupKey(key)
	return g
}

func TestPlainBackendValidation(t *testing.T) {
	b := NewPlainBackend()
	if err := b.WritePage(PageKey{Kind: KindAccountMeta}, []byte("short")); !errors.Is(err, ErrBadPage) {
		t.Fatalf("short page: %v", err)
	}
	if _, err := b.ReadPage(PageKey{Kind: KindAccountMeta}); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("missing page: %v", err)
	}
	if err := b.WritePage(PageKey{Kind: KindAccountMeta}, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatal("Len")
	}
}

func TestPrefetcherQueuesTailPages(t *testing.T) {
	p := NewPrefetcher()
	p.QueueCode(hashOf(1), uint32(3*PageSize)) // 3 pages → queue pages 1,2
	if p.Pending() != 2 {
		t.Fatalf("pending = %d", p.Pending())
	}
	// Single-page code queues nothing.
	p.Reset()
	p.QueueCode(hashOf(2), 100)
	if p.Pending() != 0 {
		t.Fatalf("single-page pending = %d", p.Pending())
	}
}

func TestPrefetcherInterval(t *testing.T) {
	p := NewPrefetcher()
	p.SetRandFn(func(n int64) int64 { return n / 2 }) // deterministic midpoint
	p.QueueCode(hashOf(1), uint32(10*PageSize))       // 9 queued

	// Simulate real queries every 10 ms of virtual time.
	now := time.Duration(0)
	gap := 10 * time.Millisecond
	for i := 0; i < 8; i++ {
		p.NotifyQuery(now)
		now += gap
	}
	// avgGap ≈ 10 ms; next due ≈ lastQuery + 2.5ms + 2.5ms = +5 ms.
	if _, ok := p.PopDue(now - gap + time.Millisecond); ok {
		t.Fatal("popped before the timer expired")
	}
	ref, ok := p.PopDue(now)
	if !ok {
		t.Fatal("pop after deadline failed")
	}
	if ref.Index != 1 {
		t.Fatalf("first prefetched page = %d, want 1", ref.Index)
	}
	if p.Issued() != 1 {
		t.Fatal("issued counter")
	}
}

func TestPrefetcherSpreadsQueries(t *testing.T) {
	// Issue real queries at fixed cadence and count how many prefetches
	// fire between consecutive real queries: should be ≈1 (the paper's
	// "insert a prefetch query in the middle of every two original
	// queries"), never a burst.
	p := NewPrefetcher()
	p.SetRandFn(func(n int64) int64 { return n / 2 })
	p.QueueCode(hashOf(1), uint32(40*PageSize))

	now := time.Duration(0)
	gap := 10 * time.Millisecond
	// Warm the average.
	for i := 0; i < 4; i++ {
		p.NotifyQuery(now)
		now += gap
	}
	maxBetween := 0
	for q := 0; q < 20; q++ {
		p.NotifyQuery(now)
		fired := 0
		// Poll the timer at 1 ms resolution until the next real query.
		for tick := time.Duration(0); tick < gap; tick += time.Millisecond {
			if _, ok := p.PopDue(now + tick); ok {
				fired++
			}
		}
		if fired > maxBetween {
			maxBetween = fired
		}
		now += gap
	}
	if maxBetween == 0 {
		t.Fatal("prefetcher never fired")
	}
	if maxBetween > 3 {
		t.Fatalf("prefetch burst of %d between two queries — pattern leaks", maxBetween)
	}
}

func TestPrefetcherReset(t *testing.T) {
	p := NewPrefetcher()
	p.QueueCode(hashOf(1), uint32(5*PageSize))
	p.NotifyQuery(time.Second)
	p.Reset()
	if p.Pending() != 0 || p.Issued() != 0 {
		t.Fatal("reset incomplete")
	}
}

// Property: storage read-after-write returns the written value for
// arbitrary keys, through real grouping.
func TestQuickStorageRoundTrip(t *testing.T) {
	s := NewStore(NewPlainBackend())
	a := addr(9)
	f := func(key, val [32]byte) bool {
		k, v := types.Hash(key), types.Hash(val)
		if err := s.WriteStorageRecord(a, k, v); err != nil {
			return false
		}
		got, found, err := s.ReadStorageRecord(a, k)
		return err == nil && found && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkORAMStorageRead(b *testing.B) {
	s := newORAMStore(b)
	a := addr(1)
	for i := byte(0); i < 64; i++ {
		if err := s.WriteStorageRecord(a, hashOf(i), hashOf(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ReadStorageRecord(a, hashOf(byte(i%64))); err != nil {
			b.Fatal(err)
		}
	}
}
