package keccak

import (
	"bytes"
	"encoding/hex"
	"sync"
	"testing"
	"testing/quick"
)

// Known-answer tests from the Ethereum ecosystem.
func TestKnownAnswers(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		// Empty string: the famous Ethereum empty-hash constant.
		{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
		// keccak256("abc")
		{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
		// keccak256("testing")
		{"testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"},
		// keccak256("The quick brown fox jumps over the lazy dog")
		{"The quick brown fox jumps over the lazy dog",
			"4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
	}
	for _, tt := range tests {
		got := Sum256([]byte(tt.in))
		if hex.EncodeToString(got[:]) != tt.want {
			t.Errorf("Sum256(%q) = %x, want %s", tt.in, got, tt.want)
		}
	}
}

// keccak256 of a full rate block boundary and beyond.
func TestBlockBoundaries(t *testing.T) {
	for _, n := range []int{1, 135, 136, 137, 271, 272, 273, 1000, 4096} {
		data := bytes.Repeat([]byte{0xa5}, n)
		// Hash in one shot vs incremental writes must agree.
		oneShot := Sum256(data)
		h := New256()
		for i := 0; i < n; i += 7 {
			end := i + 7
			if end > n {
				end = n
			}
			if _, err := h.Write(data[i:end]); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if got := h.Sum(nil); !bytes.Equal(got, oneShot[:]) {
			t.Errorf("n=%d: incremental %x != one-shot %x", n, got, oneShot)
		}
	}
}

func TestSumDoesNotMutate(t *testing.T) {
	h := New256()
	if _, err := h.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	d1 := h.Sum(nil)
	d2 := h.Sum(nil)
	if !bytes.Equal(d1, d2) {
		t.Error("Sum mutated sponge state")
	}
	if _, err := h.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	want := Sum256([]byte("hello world"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("continued write after Sum: got %x want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	h := New256()
	if _, err := h.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	h.Reset()
	if _, err := h.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	want := Sum256([]byte("abc"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("after reset: got %x want %x", got, want)
	}
}

func TestHashVariadic(t *testing.T) {
	want := Sum256([]byte("foobarbaz"))
	got := Hash([]byte("foo"), []byte("bar"), []byte("baz"))
	if !bytes.Equal(got, want[:]) {
		t.Errorf("Hash variadic: got %x want %x", got, want)
	}
}

func TestSizes(t *testing.T) {
	h := New256()
	if h.Size() != 32 {
		t.Errorf("Size = %d", h.Size())
	}
	if h.BlockSize() != 136 {
		t.Errorf("BlockSize = %d", h.BlockSize())
	}
}

// Property: splitting the input at any point yields the same digest.
func TestQuickSplitInvariance(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		i := int(split)
		if i > len(data) {
			i = len(data)
		}
		h := New256()
		_, _ = h.Write(data[:i])
		_, _ = h.Write(data[i:])
		whole := Sum256(data)
		return bytes.Equal(h.Sum(nil), whole[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The reusable-sponge API must agree with the one-shot functions,
// including across Reset reuse and the pooled Into helpers.
func TestSpongeMatchesSum256(t *testing.T) {
	inputs := [][]byte{nil, []byte("abc"), bytes.Repeat([]byte{0x5a}, 137)}
	h := NewSponge()
	for _, in := range inputs {
		h.Reset()
		if _, err := h.Write(in); err != nil {
			t.Fatal(err)
		}
		want := Sum256(in)
		if got := h.Sum256(); got != want {
			t.Errorf("Sponge(%q) = %x, want %x", in, got, want)
		}

		var into [Size]byte
		Sum256Into(into[:], in)
		if into != want {
			t.Errorf("Sum256Into(%q) = %x, want %x", in, into, want)
		}
	}
}

func TestSpongeSumInto(t *testing.T) {
	h := NewSponge()
	if _, err := h.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	var out [Size]byte
	h.SumInto(out[:])
	want := Sum256([]byte("hello world"))
	if out != want {
		t.Errorf("SumInto = %x, want %x", out, want)
	}
}

func TestHashInto(t *testing.T) {
	want := Sum256([]byte("foobarbaz"))
	var got [Size]byte
	HashInto(got[:], []byte("foo"), []byte("bar"), []byte("baz"))
	if got != want {
		t.Errorf("HashInto = %x, want %x", got, want)
	}
}

// Pooled helpers must leave no residue: interleaved concurrent use
// from many goroutines yields correct digests (run with -race).
func TestSum256IntoConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(g)}, 64+g)
			want := Sum256(data)
			for i := 0; i < 200; i++ {
				var got [Size]byte
				Sum256Into(got[:], data)
				if got != want {
					t.Errorf("goroutine %d iter %d: %x != %x", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSum256IntoAllocs(t *testing.T) {
	data := make([]byte, 64)
	var out [Size]byte
	allocs := testing.AllocsPerRun(100, func() {
		Sum256Into(out[:], data)
	})
	if allocs > 0 {
		t.Errorf("Sum256Into allocates %v times per call, want 0", allocs)
	}
}

func BenchmarkSum256_1KB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkSum256_32B(b *testing.B) {
	data := make([]byte, 32)
	b.SetBytes(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
