// Package keccak implements the Keccak-256 hash function as used by
// Ethereum (the original Keccak submission padding, not the final
// SHA3-256 FIPS-202 padding).
package keccak

import (
	"encoding/binary"
	"hash"
	"sync"
)

const (
	// Size is the digest size of Keccak-256 in bytes.
	Size = 32
	// rate is the sponge rate for Keccak-256: 1600/8 - 2*Size.
	rate = 136
)

// roundConstants are the 24 keccak-f[1600] iota round constants.
var _roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// state is a keccak sponge absorbing into a 1600-bit state.
type state struct {
	a      [25]uint64
	buf    [rate]byte
	bufLen int
}

var _ hash.Hash = (*state)(nil)

// New256 returns a new Keccak-256 hash.Hash.
func New256() hash.Hash {
	return &state{}
}

// Sum256 computes the Keccak-256 digest of data.
func Sum256(data []byte) [Size]byte {
	var s state
	_, _ = s.Write(data)
	var out [Size]byte
	s.sumInto(out[:])
	return out
}

// Hash computes the Keccak-256 digest of the concatenation of the
// provided byte slices and returns it as a 32-byte slice.
func Hash(data ...[]byte) []byte {
	var s state
	for _, d := range data {
		_, _ = s.Write(d)
	}
	out := make([]byte, Size)
	s.sumInto(out)
	return out
}

// Sponge is an exported, resettable Keccak-256 sponge for callers
// that hash in a loop (the EVM's KECCAK256 opcode, CREATE2 address
// derivation, MPT node hashing): Reset returns it to the initial
// state without reallocating, and SumInto finalizes without copying
// the digest through a return value. A Sponge is not safe for
// concurrent use.
type Sponge struct {
	s state
}

// NewSponge returns a fresh reusable sponge.
func NewSponge() *Sponge { return &Sponge{} }

// Reset returns the sponge to its initial (empty) state.
func (h *Sponge) Reset() { h.s.Reset() }

// Write absorbs p. It never fails.
func (h *Sponge) Write(p []byte) (int, error) { return h.s.Write(p) }

// SumInto finalizes the sponge and writes the 32-byte digest into
// out (which must hold at least Size bytes). Finalization is
// destructive: call Reset before reusing the sponge.
func (h *Sponge) SumInto(out []byte) { h.s.sumInto(out) }

// Sum256 finalizes the sponge and returns the digest. Like SumInto,
// it consumes the sponge: Reset before reuse.
func (h *Sponge) Sum256() [Size]byte {
	var out [Size]byte
	h.s.sumInto(out[:])
	return out
}

// spongePool recycles sponges for the Into helpers below; sponges are
// returned reset, so Get yields a ready-to-absorb state.
var spongePool = sync.Pool{New: func() any { return new(Sponge) }}

// Sum256Into computes the Keccak-256 digest of data into out (which
// must hold at least Size bytes) using a pooled sponge: no per-call
// sponge setup and no digest copies, for hot paths that hash per
// opcode or per trie node.
func Sum256Into(out []byte, data []byte) {
	h := spongePool.Get().(*Sponge)
	_, _ = h.s.Write(data)
	h.s.sumInto(out)
	h.s.Reset()
	spongePool.Put(h)
}

// HashInto is Sum256Into over the concatenation of multiple slices
// (CREATE2's 0xff ++ sender ++ salt ++ codeHash preimage).
func HashInto(out []byte, data ...[]byte) {
	h := spongePool.Get().(*Sponge)
	for _, d := range data {
		_, _ = h.s.Write(d)
	}
	h.s.sumInto(out)
	h.s.Reset()
	spongePool.Put(h)
}

// Write absorbs p into the sponge. It never fails.
func (s *state) Write(p []byte) (int, error) {
	n := len(p)
	// Finish a partially filled buffer first.
	if s.bufLen > 0 {
		space := rate - s.bufLen
		if space > len(p) {
			space = len(p)
		}
		copy(s.buf[s.bufLen:], p[:space])
		s.bufLen += space
		p = p[space:]
		if s.bufLen == rate {
			s.absorbBlock(s.buf[:])
			s.bufLen = 0
		}
	}
	// Absorb full blocks straight from the input, no staging copy.
	for len(p) >= rate {
		s.absorbBlock(p[:rate])
		p = p[rate:]
	}
	if len(p) > 0 {
		copy(s.buf[:], p)
		s.bufLen = len(p)
	}
	return n, nil
}

// Sum appends the digest to b and returns the result. It does not
// modify the underlying sponge state.
func (s *state) Sum(b []byte) []byte {
	var out [Size]byte
	clone := *s
	clone.sumInto(out[:])
	return append(b, out[:]...)
}

// Reset resets the sponge to its initial state.
func (s *state) Reset() {
	*s = state{}
}

// Size returns the digest size in bytes.
func (s *state) Size() int { return Size }

// BlockSize returns the sponge rate in bytes.
func (s *state) BlockSize() int { return rate }

// sumInto finalizes the sponge (destructively) and writes the digest.
func (s *state) sumInto(out []byte) {
	// Keccak (pre-FIPS) padding: 0x01 ... 0x80.
	s.buf[s.bufLen] = 0x01
	for i := s.bufLen + 1; i < rate; i++ {
		s.buf[i] = 0
	}
	s.buf[rate-1] |= 0x80
	s.absorbBlock(s.buf[:])
	s.bufLen = 0

	binary.LittleEndian.PutUint64(out[0:], s.a[0])
	binary.LittleEndian.PutUint64(out[8:], s.a[1])
	binary.LittleEndian.PutUint64(out[16:], s.a[2])
	binary.LittleEndian.PutUint64(out[24:], s.a[3])
}

// absorbBlock XORs one rate-sized block into the state and permutes.
func (s *state) absorbBlock(block []byte) {
	_ = block[rate-1]
	for i := 0; i < rate/8; i++ {
		s.a[i] ^= binary.LittleEndian.Uint64(block[i*8:])
	}
	keccakF1600(&s.a)
}

// rotl64 rotates x left by n bits.
func rotl64(x uint64, n uint) uint64 {
	return x<<n | x>>(64-n)
}

// keccakF1600 applies the 24-round keccak-f[1600] permutation. The
// round body is fully unrolled (theta, rho+pi, chi fused per lane):
// the generic nested-loop form spends most of its time on the %5
// index arithmetic, and this routine is the single hottest function
// under KECCAK256-heavy contracts, CREATE2, and MPT root hashing.
func keccakF1600(a *[25]uint64) {
	var b [25]uint64
	for round := 0; round < 24; round++ {
		// Theta.
		c0 := a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20]
		c1 := a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21]
		c2 := a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22]
		c3 := a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23]
		c4 := a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24]
		d0 := c4 ^ rotl64(c1, 1)
		d1 := c0 ^ rotl64(c2, 1)
		d2 := c1 ^ rotl64(c3, 1)
		d3 := c2 ^ rotl64(c4, 1)
		d4 := c3 ^ rotl64(c0, 1)
		// Rho and Pi.
		b[0] = a[0] ^ d0
		b[16] = rotl64(a[5]^d0, 36)
		b[7] = rotl64(a[10]^d0, 3)
		b[23] = rotl64(a[15]^d0, 41)
		b[14] = rotl64(a[20]^d0, 18)
		b[10] = rotl64(a[1]^d1, 1)
		b[1] = rotl64(a[6]^d1, 44)
		b[17] = rotl64(a[11]^d1, 10)
		b[8] = rotl64(a[16]^d1, 45)
		b[24] = rotl64(a[21]^d1, 2)
		b[20] = rotl64(a[2]^d2, 62)
		b[11] = rotl64(a[7]^d2, 6)
		b[2] = rotl64(a[12]^d2, 43)
		b[18] = rotl64(a[17]^d2, 15)
		b[9] = rotl64(a[22]^d2, 61)
		b[5] = rotl64(a[3]^d3, 28)
		b[21] = rotl64(a[8]^d3, 55)
		b[12] = rotl64(a[13]^d3, 25)
		b[3] = rotl64(a[18]^d3, 21)
		b[19] = rotl64(a[23]^d3, 56)
		b[15] = rotl64(a[4]^d4, 27)
		b[6] = rotl64(a[9]^d4, 20)
		b[22] = rotl64(a[14]^d4, 39)
		b[13] = rotl64(a[19]^d4, 8)
		b[4] = rotl64(a[24]^d4, 14)
		// Chi.
		a[0] = b[0] ^ (^b[1] & b[2])
		a[1] = b[1] ^ (^b[2] & b[3])
		a[2] = b[2] ^ (^b[3] & b[4])
		a[3] = b[3] ^ (^b[4] & b[0])
		a[4] = b[4] ^ (^b[0] & b[1])
		a[5] = b[5] ^ (^b[6] & b[7])
		a[6] = b[6] ^ (^b[7] & b[8])
		a[7] = b[7] ^ (^b[8] & b[9])
		a[8] = b[8] ^ (^b[9] & b[5])
		a[9] = b[9] ^ (^b[5] & b[6])
		a[10] = b[10] ^ (^b[11] & b[12])
		a[11] = b[11] ^ (^b[12] & b[13])
		a[12] = b[12] ^ (^b[13] & b[14])
		a[13] = b[13] ^ (^b[14] & b[10])
		a[14] = b[14] ^ (^b[10] & b[11])
		a[15] = b[15] ^ (^b[16] & b[17])
		a[16] = b[16] ^ (^b[17] & b[18])
		a[17] = b[17] ^ (^b[18] & b[19])
		a[18] = b[18] ^ (^b[19] & b[15])
		a[19] = b[19] ^ (^b[15] & b[16])
		a[20] = b[20] ^ (^b[21] & b[22])
		a[21] = b[21] ^ (^b[22] & b[23])
		a[22] = b[22] ^ (^b[23] & b[24])
		a[23] = b[23] ^ (^b[24] & b[20])
		a[24] = b[24] ^ (^b[20] & b[21])
		// Iota.
		a[0] ^= _roundConstants[round]
	}
}
