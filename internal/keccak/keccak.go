// Package keccak implements the Keccak-256 hash function as used by
// Ethereum (the original Keccak submission padding, not the final
// SHA3-256 FIPS-202 padding).
package keccak

import "hash"

const (
	// Size is the digest size of Keccak-256 in bytes.
	Size = 32
	// rate is the sponge rate for Keccak-256: 1600/8 - 2*Size.
	rate = 136
)

// roundConstants are the 24 keccak-f[1600] iota round constants.
var _roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets are the rho rotation offsets indexed by lane (x + 5y).
var _rotationOffsets = [25]uint{
	0, 1, 62, 28, 27,
	36, 44, 6, 55, 20,
	3, 10, 43, 25, 39,
	41, 45, 15, 21, 8,
	18, 2, 61, 56, 14,
}

// state is a keccak sponge absorbing into a 1600-bit state.
type state struct {
	a      [25]uint64
	buf    [rate]byte
	bufLen int
}

var _ hash.Hash = (*state)(nil)

// New256 returns a new Keccak-256 hash.Hash.
func New256() hash.Hash {
	return &state{}
}

// Sum256 computes the Keccak-256 digest of data.
func Sum256(data []byte) [Size]byte {
	var s state
	_, _ = s.Write(data)
	var out [Size]byte
	s.sumInto(out[:])
	return out
}

// Hash computes the Keccak-256 digest of the concatenation of the
// provided byte slices and returns it as a 32-byte slice.
func Hash(data ...[]byte) []byte {
	var s state
	for _, d := range data {
		_, _ = s.Write(d)
	}
	out := make([]byte, Size)
	s.sumInto(out)
	return out
}

// Write absorbs p into the sponge. It never fails.
func (s *state) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		space := rate - s.bufLen
		if space > len(p) {
			space = len(p)
		}
		copy(s.buf[s.bufLen:], p[:space])
		s.bufLen += space
		p = p[space:]
		if s.bufLen == rate {
			s.absorbBlock()
		}
	}
	return n, nil
}

// Sum appends the digest to b and returns the result. It does not
// modify the underlying sponge state.
func (s *state) Sum(b []byte) []byte {
	var out [Size]byte
	clone := *s
	clone.sumInto(out[:])
	return append(b, out[:]...)
}

// Reset resets the sponge to its initial state.
func (s *state) Reset() {
	*s = state{}
}

// Size returns the digest size in bytes.
func (s *state) Size() int { return Size }

// BlockSize returns the sponge rate in bytes.
func (s *state) BlockSize() int { return rate }

// sumInto finalizes the sponge (destructively) and writes the digest.
func (s *state) sumInto(out []byte) {
	// Keccak (pre-FIPS) padding: 0x01 ... 0x80.
	s.buf[s.bufLen] = 0x01
	for i := s.bufLen + 1; i < rate; i++ {
		s.buf[i] = 0
	}
	s.buf[rate-1] |= 0x80
	s.bufLen = rate
	s.absorbBlock()

	for i := 0; i < Size; i++ {
		out[i] = byte(s.a[i/8] >> (8 * uint(i%8)))
	}
}

// absorbBlock XORs the buffered block into the state and permutes.
func (s *state) absorbBlock() {
	for i := 0; i < rate/8; i++ {
		var lane uint64
		for j := 7; j >= 0; j-- {
			lane = lane<<8 | uint64(s.buf[i*8+j])
		}
		s.a[i] ^= lane
	}
	s.bufLen = 0
	keccakF1600(&s.a)
}

// rotl64 rotates x left by n bits.
func rotl64(x uint64, n uint) uint64 {
	return x<<n | x>>(64-n)
}

// keccakF1600 applies the 24-round keccak-f[1600] permutation.
func keccakF1600(a *[25]uint64) {
	var c [5]uint64
	var d [5]uint64
	var b [25]uint64

	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl64(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// Rho and Pi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = rotl64(a[x+5*y], _rotationOffsets[x+5*y])
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// Iota.
		a[0] ^= _roundConstants[round]
	}
}
