package tracer

import (
	"testing"

	"hardtape/internal/evm"
	"hardtape/internal/evm/asm"
	"hardtape/internal/secp256k1"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// runTraced executes a signed transaction under a fresh EVM with the
// given tracer attached, returning the trace.
func runTraced(t *testing.T, tr *Tracer, code []byte) *TxTrace {
	t.Helper()
	priv, err := secp256k1.GenerateKey([]byte("trace sender"))
	if err != nil {
		t.Fatal(err)
	}
	sender := types.Address(priv.Public.Address())
	contract := types.MustAddress("0xc0de00000000000000000000000000000000c0de")

	o := state.NewOverlay(state.NewWorldState())
	o.CreateAccount(sender)
	o.AddBalance(sender, uint256.NewInt(1<<50))
	o.CreateAccount(contract)
	o.SetCode(contract, code)

	e := evm.New(evm.BlockContext{Number: 1, GasLimit: 30_000_000}, o)
	e.Hooks = tr.Hooks()

	tx := &types.Transaction{
		Nonce: 0, GasPrice: uint256.NewInt(1), GasLimit: 500_000,
		To: &contract, Value: new(uint256.Int),
	}
	if err := tx.Sign(priv); err != nil {
		t.Fatal(err)
	}
	tr.BeginTx(tx.Hash())
	res, err := e.ApplyTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	return tr.EndTx(res)
}

func simpleCode() []byte {
	return asm.New().
		SStore(1, 0xaa).
		Push(1).Op(evm.SLOAD).Op(evm.POP).
		Push(0x42).Push(0).Op(evm.MSTORE).
		ReturnData(0, 32).
		MustAssemble()
}

func TestTraceCapturesSteps(t *testing.T) {
	tr := New(true)
	trace := runTraced(t, tr, simpleCode())
	if len(trace.Steps) == 0 {
		t.Fatal("no steps captured")
	}
	// First step is at PC 0.
	if trace.Steps[0].PC != 0 {
		t.Fatalf("first step pc = %d", trace.Steps[0].PC)
	}
	// Storage accesses: one write + one read.
	var reads, writes int
	for _, s := range trace.Storage {
		if s.Write {
			writes++
		} else {
			reads++
		}
	}
	if writes != 1 || reads != 1 {
		t.Fatalf("storage accesses: %d writes, %d reads", writes, reads)
	}
	if trace.GasUsed == 0 || trace.Reverted || trace.Failed {
		t.Fatalf("outcome: %+v", trace)
	}
	if got := new(uint256.Int).SetBytes(trace.ReturnData); !got.Eq(uint256.NewInt(0x42)) {
		t.Fatalf("return data = %s", got)
	}
}

func TestTraceWithoutSteps(t *testing.T) {
	tr := New(false)
	trace := runTraced(t, tr, simpleCode())
	if len(trace.Steps) != 0 {
		t.Fatal("steps captured despite CaptureSteps=false")
	}
	if len(trace.Calls) == 0 {
		t.Fatal("frame records missing")
	}
}

func TestTraceCallTree(t *testing.T) {
	// Contract calls itself once (depth 2).
	contract := types.MustAddress("0xc0de00000000000000000000000000000000c0de")
	code := asm.New().
		// Re-enter only when calldata is empty.
		Op(evm.CALLDATASIZE).
		JumpI("leaf").
		Push(0).Push(0).Push(1).Push(0). // outSize outOff inSize inOff (inSize=1 → callee sees data)
		Push(0).                         // value
		PushAddr(contract).
		Push(50_000).
		Op(evm.CALL).Op(evm.POP).
		Stop().
		Label("leaf").
		Stop().
		MustAssemble()
	tr := New(false)
	trace := runTraced(t, tr, code)
	if len(trace.Calls) != 2 {
		t.Fatalf("calls = %d, want 2", len(trace.Calls))
	}
	if trace.MaxCallDepth != 2 {
		t.Fatalf("max depth = %d", trace.MaxCallDepth)
	}
	if trace.Calls[1].Depth != 1 {
		t.Fatalf("inner call depth = %d", trace.Calls[1].Depth)
	}
	// Frame gas accounting: inner call used > 0, outer ≥ inner.
	if trace.Calls[1].GasUsed == 0 && trace.Calls[0].GasUsed < trace.Calls[1].GasUsed {
		t.Fatalf("frame gas: outer=%d inner=%d", trace.Calls[0].GasUsed, trace.Calls[1].GasUsed)
	}
}

func TestTraceRevert(t *testing.T) {
	code := asm.New().
		Push(0).Push(0).Op(evm.REVERT).
		MustAssemble()
	tr := New(true)
	trace := runTraced(t, tr, code)
	if !trace.Reverted || trace.Failed {
		t.Fatalf("outcome: reverted=%v failed=%v", trace.Reverted, trace.Failed)
	}
}

func TestBundleAccumulation(t *testing.T) {
	tr := New(false)
	runTraced(t, tr, simpleCode())
	// Second tx in the same bundle (fresh EVM/sender is fine; the
	// tracer only accumulates).
	runTraced(t, tr, simpleCode())
	if got := len(tr.Bundle().Txs); got != 2 {
		t.Fatalf("bundle txs = %d", got)
	}
	tr.Reset()
	if len(tr.Bundle().Txs) != 0 {
		t.Fatal("reset did not clear bundle")
	}
}

func TestDiffIdenticalTraces(t *testing.T) {
	t1 := runTraced(t, New(true), simpleCode())
	t2 := runTraced(t, New(true), simpleCode())
	if diffs := Diff(t1, t2); len(diffs) != 0 {
		t.Fatalf("identical executions diverged: %v", diffs)
	}
}

func TestDiffDetectsDivergence(t *testing.T) {
	t1 := runTraced(t, New(true), simpleCode())
	t2 := runTraced(t, New(true), asm.New().
		SStore(1, 0xbb). // different value, different trace
		Push(1).Op(evm.SLOAD).Op(evm.POP).
		Push(0x43).Push(0).Op(evm.MSTORE).
		ReturnData(0, 32).
		MustAssemble())
	diffs := Diff(t1, t2)
	if len(diffs) == 0 {
		t.Fatal("divergent executions reported identical")
	}
}

func TestDiffOutcomeFields(t *testing.T) {
	a := &TxTrace{GasUsed: 100, ReturnData: []byte{1}}
	b := &TxTrace{GasUsed: 200, ReturnData: []byte{2}, Reverted: true}
	diffs := Diff(a, b)
	if len(diffs) < 3 {
		t.Fatalf("expected ≥3 diffs, got %v", diffs)
	}
}
