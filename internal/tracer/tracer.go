// Package tracer records structured execution traces of pre-executed
// transactions — the product HarDTAPE returns to its user (paper
// step 9) and the object compared against ground truth for the
// correctness evaluation (§VI-B, mirroring debug_traceTransaction).
package tracer

import (
	"fmt"

	"hardtape/internal/evm"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Step is one executed instruction (PC, opcode, gas — the fields the
// quicknode ground-truth traces carry).
type Step struct {
	Depth    int
	PC       uint64
	Op       evm.OpCode
	Gas      uint64
	Cost     uint64
	StackLen int
}

// CallRecord is one execution frame.
type CallRecord struct {
	Kind       evm.CallKind
	Depth      int
	From       types.Address
	To         types.Address
	Value      *uint256.Int
	Gas        uint64
	GasUsed    uint64
	InputSize  int
	ReturnSize int
	Reverted   bool
	Failed     bool
}

// TxTrace is everything recorded for one transaction.
type TxTrace struct {
	TxHash     types.Hash
	GasUsed    uint64
	ReturnData []byte
	Reverted   bool
	Failed     bool

	Steps   []Step
	Calls   []CallRecord
	Storage []types.StorageAccess
	Logs    []*types.Log

	// MaxCallDepth and frame statistics feed Table I reproduction.
	MaxCallDepth int
}

// BundleTrace aggregates the traces of one pre-executed bundle.
type BundleTrace struct {
	StateBlock uint64
	Txs        []*TxTrace
}

// Tracer collects TxTraces through evm.Hooks. One tracer serves one
// bundle (the paper implements it as a virtual frame below all
// execution frames). Not safe for concurrent use.
type Tracer struct {
	// CaptureSteps toggles per-instruction capture (expensive; the
	// correctness harness wants it, throughput benchmarks do not).
	CaptureSteps bool

	current *TxTrace
	bundle  BundleTrace
	// callStack tracks open frames to fill GasUsed on exit.
	callStack []int
}

// New returns a tracer. With captureSteps false only frame-level and
// storage events are recorded.
func New(captureSteps bool) *Tracer {
	return &Tracer{CaptureSteps: captureSteps}
}

// Hooks returns the evm.Hooks wired to this tracer. OnStep is only
// installed when CaptureSteps is set (decide before calling Hooks):
// leaving it nil lets the interpreter skip per-instruction StepInfo
// assembly entirely on throughput runs.
func (t *Tracer) Hooks() *evm.Hooks {
	h := &evm.Hooks{
		OnCallEnter:  t.onCallEnter,
		OnCallExit:   t.onCallExit,
		OnWorldState: t.onWorldState,
		OnLog:        t.onLog,
	}
	if t.CaptureSteps {
		h.OnStep = t.onStep
	}
	return h
}

// BeginTx starts recording a transaction.
func (t *Tracer) BeginTx(txHash types.Hash) {
	t.current = &TxTrace{TxHash: txHash}
	t.callStack = t.callStack[:0]
}

// EndTx finalizes the record with the execution result.
func (t *Tracer) EndTx(res *evm.ExecutionResult) *TxTrace {
	if t.current == nil {
		return nil
	}
	tr := t.current
	tr.GasUsed = res.GasUsed
	tr.ReturnData = append([]byte(nil), res.ReturnData...)
	tr.Reverted = res.Reverted()
	tr.Failed = res.Err != nil && !res.Reverted()
	tr.Logs = res.Logs
	t.bundle.Txs = append(t.bundle.Txs, tr)
	t.current = nil
	return tr
}

// Bundle returns the accumulated bundle trace.
func (t *Tracer) Bundle() *BundleTrace {
	b := t.bundle
	return &b
}

// Reset clears all state (bundle release).
func (t *Tracer) Reset() {
	t.current = nil
	t.bundle = BundleTrace{}
	t.callStack = nil
}

func (t *Tracer) onStep(info evm.StepInfo) {
	if t.current == nil || !t.CaptureSteps {
		return
	}
	t.current.Steps = append(t.current.Steps, Step{
		Depth:    info.Depth,
		PC:       info.PC,
		Op:       info.Op,
		Gas:      info.Gas,
		Cost:     info.Cost,
		StackLen: info.StackLen,
	})
}

func (t *Tracer) onCallEnter(info evm.CallFrameInfo) {
	if t.current == nil {
		return
	}
	t.current.Calls = append(t.current.Calls, CallRecord{
		Kind:      info.Kind,
		Depth:     info.Depth,
		From:      info.Caller,
		To:        info.Address,
		Value:     info.Value,
		Gas:       info.Gas,
		InputSize: info.InputSize,
	})
	t.callStack = append(t.callStack, len(t.current.Calls)-1)
	if d := info.Depth + 1; d > t.current.MaxCallDepth {
		t.current.MaxCallDepth = d
	}
}

func (t *Tracer) onCallExit(info evm.CallResultInfo) {
	if t.current == nil || len(t.callStack) == 0 {
		return
	}
	idx := t.callStack[len(t.callStack)-1]
	t.callStack = t.callStack[:len(t.callStack)-1]
	rec := &t.current.Calls[idx]
	rec.GasUsed = info.GasUsed
	rec.ReturnSize = info.ReturnSize
	rec.Reverted = info.Reverted
	rec.Failed = info.Err != nil && !info.Reverted
}

func (t *Tracer) onWorldState(a evm.WorldStateAccess) {
	if t.current == nil || a.Kind != evm.WSStorage {
		return
	}
	t.current.Storage = append(t.current.Storage, types.StorageAccess{
		Address: a.Addr,
		Slot:    a.Key,
		Write:   a.Write,
	})
}

func (t *Tracer) onLog(*types.Log) {
	// Logs are taken from the execution result at EndTx (they may be
	// reverted away mid-transaction).
}

// Diff compares two transaction traces and returns a human-readable
// list of divergences (empty means identical behaviour). It compares
// outcomes, gas, return data, calls, storage accesses and — when both
// captured them — instruction steps.
func Diff(a, b *TxTrace) []string {
	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if a.Reverted != b.Reverted {
		add("reverted: %v vs %v", a.Reverted, b.Reverted)
	}
	if a.Failed != b.Failed {
		add("failed: %v vs %v", a.Failed, b.Failed)
	}
	if a.GasUsed != b.GasUsed {
		add("gasUsed: %d vs %d", a.GasUsed, b.GasUsed)
	}
	if string(a.ReturnData) != string(b.ReturnData) {
		add("returnData: %x vs %x", a.ReturnData, b.ReturnData)
	}
	if len(a.Calls) != len(b.Calls) {
		add("call count: %d vs %d", len(a.Calls), len(b.Calls))
	} else {
		for i := range a.Calls {
			ca, cb := a.Calls[i], b.Calls[i]
			if ca.Kind != cb.Kind || ca.From != cb.From || ca.To != cb.To ||
				ca.GasUsed != cb.GasUsed || ca.Reverted != cb.Reverted {
				add("call %d: %s %s→%s used=%d rev=%v vs %s %s→%s used=%d rev=%v",
					i, ca.Kind, ca.From, ca.To, ca.GasUsed, ca.Reverted,
					cb.Kind, cb.From, cb.To, cb.GasUsed, cb.Reverted)
			}
		}
	}
	if len(a.Storage) != len(b.Storage) {
		add("storage access count: %d vs %d", len(a.Storage), len(b.Storage))
	} else {
		for i := range a.Storage {
			if a.Storage[i] != b.Storage[i] {
				add("storage access %d: %+v vs %+v", i, a.Storage[i], b.Storage[i])
			}
		}
	}
	if len(a.Logs) != len(b.Logs) {
		add("log count: %d vs %d", len(a.Logs), len(b.Logs))
	}
	if len(a.Steps) > 0 && len(b.Steps) > 0 {
		if len(a.Steps) != len(b.Steps) {
			add("step count: %d vs %d", len(a.Steps), len(b.Steps))
		} else {
			for i := range a.Steps {
				sa, sb := a.Steps[i], b.Steps[i]
				if sa != sb {
					add("step %d: pc=%d op=%s gas=%d vs pc=%d op=%s gas=%d",
						i, sa.PC, sa.Op, sa.Gas, sb.PC, sb.Op, sb.Gas)
					break // first divergence is enough
				}
			}
		}
	}
	return diffs
}
