package baseline

import (
	"errors"
	"testing"

	"hardtape/internal/evm"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

func buildWorld(t testing.TB) *workload.World {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.EOAs = 8
	cfg.Tokens = 2
	cfg.DEXes = 1
	w, err := workload.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func blockCtx() evm.BlockContext {
	return evm.BlockContext{Number: 100, GasLimit: 30_000_000, ChainID: uint256.NewInt(1)}
}

func TestGethExecutesBundle(t *testing.T) {
	w := buildWorld(t)
	g := NewGeth(w.State, blockCtx())

	token := w.Tokens[0]
	tx1, err := w.SignedTx(w.EOAs[0], &token, 0, workload.CalldataTransfer(w.EOAs[1], 100), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := w.SignedTx(w.EOAs[0], &token, 0, workload.CalldataBalanceOf(w.EOAs[1]), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.ExecuteBundle(&types.Bundle{Txs: []*types.Transaction{tx1, tx2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Txs) != 2 {
		t.Fatalf("trace txs = %d", len(res.Trace.Txs))
	}
	// Bundle semantics: tx2 sees tx1's write.
	bal := new(uint256.Int).SetBytes(res.Trace.Txs[1].ReturnData)
	if !bal.Eq(uint256.NewInt((1 << 40) + 100)) {
		t.Fatalf("bundle visibility: balance = %s", bal)
	}
	if res.VirtualTime <= 0 || res.Steps == 0 || res.GasUsed == 0 {
		t.Fatalf("timing: %+v", res)
	}
}

func TestGethBundleIsTemporary(t *testing.T) {
	w := buildWorld(t)
	g := NewGeth(w.State, blockCtx())
	token := w.Tokens[0]
	tx, err := w.SignedTx(w.EOAs[0], &token, 0, workload.CalldataTransfer(w.EOAs[1], 100), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ExecuteBundle(&types.Bundle{Txs: []*types.Transaction{tx}}); err != nil {
		t.Fatal(err)
	}
	// The canonical state must be untouched.
	key := types.BytesToHash(w.EOAs[1].Word().Bytes())
	if got := w.State.Storage(token, key).Word().Uint64(); got != 1<<40 {
		t.Fatalf("canonical state mutated: %d", got)
	}
}

func TestTSCVEEExecutesSingleContract(t *testing.T) {
	w := buildWorld(t)
	token := w.Tokens[0]
	v := NewTSCVEE(w.State, blockCtx(), token)
	tx, err := w.SignedTx(w.EOAs[0], &token, 0, workload.CalldataTransfer(w.EOAs[1], 50), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.ExecuteBundle(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime < 2_000_000 { // at least the prefetch cost
		t.Fatalf("virtual time %v below prefetch floor", res.VirtualTime)
	}
}

func TestTSCVEERejectsOtherContract(t *testing.T) {
	w := buildWorld(t)
	v := NewTSCVEE(w.State, blockCtx(), w.Tokens[0])
	other := w.Tokens[1]
	tx, err := w.SignedTx(w.EOAs[0], &other, 0, workload.CalldataBalanceOf(w.EOAs[0]), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ExecuteBundle(&types.Bundle{Txs: []*types.Transaction{tx}}); !errors.Is(err, ErrCrossContractCall) {
		t.Fatalf("foreign target: %v", err)
	}
}

func TestTSCVEERejectsCrossContractCall(t *testing.T) {
	w := buildWorld(t)
	dex := w.DEXes[0]
	// The DEX calls its token — TSC-VEE must refuse.
	v := NewTSCVEE(w.State, blockCtx(), dex)
	tx, err := w.SignedTx(w.EOAs[0], &dex, 0, workload.CalldataSwap(100), 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ExecuteBundle(&types.Bundle{Txs: []*types.Transaction{tx}}); !errors.Is(err, ErrCrossContractCall) {
		t.Fatalf("cross-contract call: %v", err)
	}
}

func TestGethAndTSCVEEAgreeOnResults(t *testing.T) {
	// Fig. 5's premise: with warm data the three platforms compute the
	// same results; only timing differs. Execute the same tx on both
	// and compare traces.
	w1 := buildWorld(t)
	w2 := buildWorld(t) // identical world, fresh nonce tracking
	token1, token2 := w1.Tokens[0], w2.Tokens[0]
	if token1 != token2 {
		t.Fatal("worlds differ")
	}
	tx1, err := w1.SignedTx(w1.EOAs[0], &token1, 0, workload.CalldataTransfer(w1.EOAs[1], 7), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := w2.SignedTx(w2.EOAs[0], &token2, 0, workload.CalldataTransfer(w2.EOAs[1], 7), 200_000)
	if err != nil {
		t.Fatal(err)
	}

	g := NewGeth(w1.State, blockCtx())
	gres, err := g.ExecuteBundle(&types.Bundle{Txs: []*types.Transaction{tx1}})
	if err != nil {
		t.Fatal(err)
	}
	v := NewTSCVEE(w2.State, blockCtx(), token2)
	vres, err := v.ExecuteBundle(&types.Bundle{Txs: []*types.Transaction{tx2}})
	if err != nil {
		t.Fatal(err)
	}
	if gres.GasUsed != vres.GasUsed || gres.Steps != vres.Steps {
		t.Fatalf("platforms diverge: geth gas=%d steps=%d, tscvee gas=%d steps=%d",
			gres.GasUsed, gres.Steps, vres.GasUsed, vres.Steps)
	}
}
