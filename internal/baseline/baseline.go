// Package baseline implements the two comparison systems of the
// paper's evaluation: "Geth" — the plain software EVM service running
// on a fast server with all data prefetched to main memory (no
// security features) — and TSC-VEE, the TrustZone single-contract
// virtual execution environment (Jian et al., TPDS'23) that prefetches
// one contract's code and storage into secure memory and cannot make
// cross-account contract calls.
//
// Both reuse the same interpreter core as HarDTAPE (internal/evm);
// they differ in their data paths, restrictions, and timing models —
// exactly the comparison the paper draws in Figs. 4 and 5.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"hardtape/internal/evm"
	"hardtape/internal/simclock"
	"hardtape/internal/state"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
)

// Result summarizes a baseline bundle execution.
type Result struct {
	Trace *tracer.BundleTrace
	// VirtualTime is the modeled wall time on the baseline's hardware.
	VirtualTime time.Duration
	GasUsed     uint64
	Steps       uint64
}

// Geth is the unprotected software pre-executor baseline. All referred
// data sits in the server's main memory (paper §VI experiment setup).
type Geth struct {
	backing state.Reader
	block   evm.BlockContext
	cal     simclock.GethCalibration
}

// NewGeth builds the baseline over a world-state reader.
func NewGeth(backing state.Reader, block evm.BlockContext) *Geth {
	return &Geth{backing: backing, block: block, cal: simclock.DefaultGethCalibration()}
}

// ExecuteBundle simulates a bundle the way the Geth-based service
// does: one overlay, sequential transactions, no crypto, no ORAM.
func (g *Geth) ExecuteBundle(bundle *types.Bundle) (*Result, error) {
	overlay := state.NewOverlay(g.backing)
	e := evm.New(g.block, overlay)

	tr := tracer.New(false)
	var steps uint64
	counter := &evm.Hooks{OnStep: func(evm.StepInfo) { steps++ }}
	e.Hooks = evm.CombineHooks(tr.Hooks(), counter)

	var gasUsed uint64
	for i, tx := range bundle.Txs {
		tr.BeginTx(tx.Hash())
		res, err := e.ApplyTransaction(tx)
		if err != nil {
			return nil, fmt.Errorf("baseline: geth tx %d: %w", i, err)
		}
		tr.EndTx(res)
		gasUsed += res.GasUsed
	}
	return &Result{
		Trace:       tr.Bundle(),
		VirtualTime: time.Duration(steps) * g.cal.TimePerOp,
		GasUsed:     gasUsed,
		Steps:       steps,
	}, nil
}

// ErrCrossContractCall is TSC-VEE's documented limitation: it runs a
// single Confidential Smart Contract and "does not support
// cross-account contract calls" (paper §VI-C).
var ErrCrossContractCall = errors.New("baseline: tsc-vee does not support cross-account contract calls")

// TSCVEE models the TrustZone single-contract TEE. The contract's
// bytecode and storage are prefetched into secure memory before
// execution (a fixed per-session cost), after which per-operation
// costs match a software EVM on the TrustZone core.
type TSCVEE struct {
	backing state.Reader
	block   evm.BlockContext
	// Contract is the single contract admitted to the enclave.
	Contract types.Address
	// timePerOp on the TrustZone core (slightly slower than the
	// baseline server per the TSC-VEE paper's own numbers).
	timePerOp time.Duration
	// prefetch is the one-time secure-memory load cost.
	prefetch time.Duration
}

// NewTSCVEE builds the model for one admitted contract.
func NewTSCVEE(backing state.Reader, block evm.BlockContext, contract types.Address) *TSCVEE {
	return &TSCVEE{
		backing:   backing,
		block:     block,
		Contract:  contract,
		timePerOp: 15 * time.Nanosecond,
		prefetch:  2 * time.Millisecond,
	}
}

// ExecuteBundle runs a bundle against the single admitted contract.
// Any frame that leaves the contract (other than plain value
// transfers) fails with ErrCrossContractCall.
func (t *TSCVEE) ExecuteBundle(bundle *types.Bundle) (*Result, error) {
	overlay := state.NewOverlay(t.backing)
	e := evm.New(t.block, overlay)

	tr := tracer.New(false)
	var steps uint64
	var crossCall bool
	guard := &evm.Hooks{
		OnStep: func(evm.StepInfo) { steps++ },
		OnCallEnter: func(info evm.CallFrameInfo) {
			// Depth 0 is the transaction's entry call; deeper frames
			// must stay within the admitted contract.
			if info.Depth > 0 && info.CodeAddr != t.Contract && info.CodeSize > 0 {
				crossCall = true
			}
		},
	}
	e.Hooks = evm.CombineHooks(tr.Hooks(), guard)

	var gasUsed uint64
	for i, tx := range bundle.Txs {
		if tx.To == nil || *tx.To != t.Contract {
			return nil, fmt.Errorf("baseline: tsc-vee tx %d targets %v: %w",
				i, tx.To, ErrCrossContractCall)
		}
		tr.BeginTx(tx.Hash())
		res, err := e.ApplyTransaction(tx)
		if err != nil {
			return nil, fmt.Errorf("baseline: tsc-vee tx %d: %w", i, err)
		}
		if crossCall {
			return nil, ErrCrossContractCall
		}
		tr.EndTx(res)
		gasUsed += res.GasUsed
	}
	return &Result{
		Trace:       tr.Bundle(),
		VirtualTime: t.prefetch + time.Duration(steps)*t.timePerOp,
		GasUsed:     gasUsed,
		Steps:       steps,
	}, nil
}
