package oram

import (
	"fmt"
	"time"

	"hardtape/internal/simclock"
)

// Op is the logical operation of an Access.
type Op int

// Access operations.
const (
	OpRead Op = iota + 1
	OpWrite
)

// stashSafetyFactor bounds the stash at factor*depth blocks; Path ORAM
// guarantees O(log n)·ω(1) with overwhelming probability, so hitting
// this bound indicates a protocol bug rather than bad luck.
const stashSafetyFactor = 16

// Client is the trusted Path ORAM client (on-chip in the Hypervisor).
// It is NOT safe for concurrent use: the paper dedicates one client
// per Hypervisor and serializes its queries.
type Client struct {
	server Server
	crypt  *cryptor
	pos    PositionMap
	stash  map[BlockID]*block
	depth  int
	leaves uint64
	clock  *simclock.Clock
	cal    simclock.Calibration
	timed  bool
	// stats
	accesses   uint64
	maxStash   int
	bytesMoved uint64
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClock makes the client charge virtual time per access (link RTT,
// server processing, per-block client work).
func WithClock(clock *simclock.Clock, cal simclock.Calibration) ClientOption {
	return func(c *Client) {
		c.clock = clock
		c.cal = cal
		c.timed = true
	}
}

// WithPositionMap substitutes a custom position map (e.g. recursive).
func WithPositionMap(pm PositionMap) ClientOption {
	return func(c *Client) { c.pos = pm }
}

// NewClient creates a client over a server with the shared ORAM key.
func NewClient(server Server, key []byte, opts ...ClientOption) (*Client, error) {
	crypt, err := newCryptor(key)
	if err != nil {
		return nil, err
	}
	c := &Client{
		server: server,
		crypt:  crypt,
		stash:  make(map[BlockID]*block),
		depth:  server.Depth(),
		leaves: server.Leaves(),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.pos == nil {
		c.pos = NewFlatPositionMap(c.leaves)
	}
	return c, nil
}

// Read fetches a block. Missing blocks return ErrNotFound after a full
// (oblivious) path access, so lookups are indistinguishable.
func (c *Client) Read(id BlockID) ([]byte, error) {
	data, err := c.access(OpRead, id, nil)
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, ErrNotFound
	}
	return data, nil
}

// Write stores a block (padding data to BlockSize).
func (c *Client) Write(id BlockID, data []byte) error {
	if len(data) > BlockSize {
		return ErrBlockTooBig
	}
	_, err := c.access(OpWrite, id, data)
	return err
}

// access is the Path ORAM protocol: remap, read path into stash,
// mutate, evict path.
func (c *Client) access(op Op, id BlockID, newData []byte) ([]byte, error) {
	leaf, known := c.pos.Get(id)
	if !known {
		leaf = randomLeaf(c.leaves)
	}
	// Remap before touching the server (obliviousness requirement).
	newLeaf := randomLeaf(c.leaves)
	c.pos.Set(id, newLeaf)

	if err := c.readPathIntoStash(leaf); err != nil {
		return nil, err
	}

	var out []byte
	if blk, ok := c.stash[id]; ok {
		blk.leaf = newLeaf
		out = make([]byte, BlockSize)
		copy(out, blk.data)
	}
	if op == OpWrite {
		padded := make([]byte, BlockSize)
		copy(padded, newData)
		c.stash[id] = &block{id: id, leaf: newLeaf, data: padded}
	}

	if err := c.evictPath(leaf); err != nil {
		return nil, err
	}

	c.accesses++
	if len(c.stash) > c.maxStash {
		c.maxStash = len(c.stash)
	}
	if len(c.stash) > stashSafetyFactor*c.depth {
		return nil, fmt.Errorf("%w: %d blocks at depth %d", ErrStashOverrun, len(c.stash), c.depth)
	}
	if c.timed {
		c.chargeAccess()
	}
	return out, nil
}

// readPathIntoStash decrypts one path and absorbs its real blocks.
func (c *Client) readPathIntoStash(leaf uint64) error {
	encrypted, err := c.server.ReadPath(leaf)
	if err != nil {
		return err
	}
	idx := pathIndices(leaf, c.depth)
	for i, ct := range encrypted {
		if ct == nil {
			continue // never-written bucket
		}
		pt, err := c.crypt.open(idx[i], ct)
		if err != nil {
			return err
		}
		bkt, err := parseBucket(pt)
		if err != nil {
			return err
		}
		for _, s := range bkt.slots {
			if uint64(s.id) == dummyID {
				continue
			}
			cp := s
			data := make([]byte, BlockSize)
			copy(data, s.data)
			cp.data = data
			c.stash[s.id] = &cp
		}
		c.bytesMoved += uint64(len(ct))
	}
	return nil
}

// evictPath greedily pushes stash blocks as deep as possible along the
// just-read path, then re-encrypts and writes every bucket back.
func (c *Client) evictPath(leaf uint64) error {
	idx := pathIndices(leaf, c.depth)
	out := make([][]byte, len(idx))
	// Deepest level first.
	for level := c.depth - 1; level >= 0; level-- {
		bkt := newEmptyBucket()
		filled := 0
		for id, blk := range c.stash {
			if filled == BucketSize {
				break
			}
			if c.pathNode(blk.leaf, level) == idx[level] {
				bkt.slots[filled] = *blk
				filled++
				delete(c.stash, id)
			}
		}
		ct, err := c.crypt.seal(idx[level], bkt.serialize())
		if err != nil {
			return err
		}
		out[level] = ct
		c.bytesMoved += uint64(len(ct))
	}
	return c.server.WritePath(leaf, out)
}

// pathNode returns the heap index of the given level on leaf's path.
func (c *Client) pathNode(leaf uint64, level int) uint64 {
	node := leaf + (uint64(1) << (c.depth - 1))
	for l := c.depth - 1; l > level; l-- {
		node /= 2
	}
	return node
}

// chargeAccess advances the virtual clock for one path access.
func (c *Client) chargeAccess() {
	blocksOnPath := uint64(c.depth * BucketSize)
	c.clock.Advance(c.cal.ORAMLinkRTT +
		c.cal.ORAMServerPerQuery +
		time.Duration(blocksOnPath)*c.cal.ORAMClientPerBlock)
}

// Stats reports client counters.
type Stats struct {
	Accesses   uint64
	MaxStash   int
	StashSize  int
	BytesMoved uint64
	Depth      int
}

// Stats returns the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Accesses:   c.accesses,
		MaxStash:   c.maxStash,
		StashSize:  len(c.stash),
		BytesMoved: c.bytesMoved,
		Depth:      c.depth,
	}
}
