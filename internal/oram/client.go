package oram

import (
	"fmt"

	"hardtape/internal/simclock"
	"hardtape/internal/telemetry"
)

// Op is the logical operation of an Access.
type Op int

// Access operations.
const (
	OpRead Op = iota + 1
	OpWrite
)

// stashSafetyFactor bounds the stash at factor*depth blocks; Path ORAM
// guarantees O(log n)·ω(1) with overwhelming probability, so hitting
// this bound indicates a protocol bug rather than bad luck.
const stashSafetyFactor = 16

// Client is the trusted Path ORAM client (on-chip in the Hypervisor).
// It is NOT safe for concurrent use: the paper dedicates one client
// per Hypervisor and serializes its queries.
type Client struct {
	server Server
	crypt  *cryptor
	pos    PositionMap
	stash  map[BlockID]*block
	depth  int
	leaves uint64
	clock  *simclock.Clock
	cal    simclock.Calibration
	timed  bool
	// eviction scratch, reused across accesses (the client is
	// single-goroutine by contract).
	pathIdx    []uint64
	levelLists [][]*block
	carry      []*block
	outCts     [][]byte
	// batch scratch: every per-batch structure is a reused flat slice
	// (no maps on the hot path — linear scans over ≤ batch-size node
	// segments beat map hashing at these sizes, and allocate nothing).
	batchLeaves []uint64
	batchNew    []uint64
	batchOps    []BatchOp
	seenNodes   []uint64
	batchNodes  []uint64 // unique path nodes, level-major segments
	batchOffs   []int    // level → segment offset in batchNodes
	batchBkts   []bucket // aligned with batchNodes
	batchFill   []int    // slots filled per bucket
	batchCts    [][]byte // sealed ciphertexts, aligned with batchNodes
	outPaths    [][][]byte
	outPathBufs [][]byte // flat backing for outPaths (len leaves·depth)
	scratchBkt  bucket   // absorbPath's decode target
	// stats
	accesses   uint64
	batches    uint64
	maxStash   int
	bytesMoved uint64
	// tm is the optional telemetry sink (nil when disabled: the hot
	// path pays one pointer check per access, nothing else).
	tm *clientTelemetry
	// ttr/tparent carry the current bundle's distributed-trace
	// identity, installed via SetTrace under the same serialization
	// that guards every access (the Hypervisor's query lock).
	ttr     *telemetry.Tracer
	tparent telemetry.SpanContext
}

// clientTelemetry holds the client's registered series. Exported
// values are aggregates the untrusted server already observes — path
// counts, wall latencies, ciphertext bytes, stash occupancy — never
// block IDs or leaf positions (telemetrysafe discipline).
type clientTelemetry struct {
	accesses  *telemetry.Counter
	batches   *telemetry.Counter
	bytes     *telemetry.Counter
	single    *telemetry.Histogram
	batch     *telemetry.Histogram
	batchSize *telemetry.Histogram
	stash     *telemetry.Gauge
	stashPeak *telemetry.Gauge
}

// WithTelemetry registers the client's series on reg and records per
// access. A nil registry leaves telemetry disabled.
func WithTelemetry(reg *telemetry.Registry) ClientOption {
	return func(c *Client) {
		if reg == nil {
			return
		}
		c.tm = &clientTelemetry{
			accesses:  reg.Counter("hardtape_oram_accesses_total", "logical ORAM block accesses"),
			batches:   reg.Counter("hardtape_oram_batches_total", "ORAM server round trips (single or batched)"),
			bytes:     reg.Counter("hardtape_oram_bytes_moved_total", "ciphertext bytes moved between client and server"),
			single:    reg.Histogram("hardtape_oram_access_seconds", "wall latency of one ORAM access round trip", nil, "kind", "single"),
			batch:     reg.Histogram("hardtape_oram_access_seconds", "wall latency of one ORAM access round trip", nil, "kind", "batch"),
			batchSize: reg.Histogram("hardtape_oram_batch_blocks", "blocks per batched access", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
			stash:     reg.Gauge("hardtape_oram_stash_depth", "stash occupancy after the last access"),
			stashPeak: reg.Gauge("hardtape_oram_stash_peak", "high-water stash occupancy"),
		}
	}
}

// SetTrace installs the distributed-trace identity the next accesses
// attribute themselves to: batched accesses open an "oram.batch" span
// under parent, and the batch-latency histogram's exemplars carry
// parent's trace id. A zero parent detaches (accesses from untraced
// bundles must not land on the previous bundle's trace). Callers MUST
// hold whatever lock serializes this client's queries — the same
// single-goroutine contract as every other method.
func (c *Client) SetTrace(tr *telemetry.Tracer, parent telemetry.SpanContext) {
	c.ttr, c.tparent = tr, parent
}

// recordAccess flushes one completed access (or batch) into the
// telemetry sink; bytes is the bytesMoved delta for the operation.
func (c *Client) recordAccess(sp *telemetry.Span, ops uint64, bytes uint64, batched bool) {
	t := c.tm
	if t == nil {
		return
	}
	t.accesses.Add(ops)
	t.batches.Inc()
	t.bytes.Add(bytes)
	if batched {
		// Exemplar link: the batch-latency bucket this observation
		// lands in remembers which trace produced it (zero trace id
		// records plainly).
		sp.EndTraced(t.batch, c.tparent.Trace)
		t.batchSize.Observe(float64(ops))
	} else {
		sp.End(t.single)
	}
	t.stash.Set(int64(len(c.stash)))
	t.stashPeak.SetMax(int64(c.maxStash))
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClock makes the client charge virtual time per access (link RTT,
// server processing, per-block client work).
func WithClock(clock *simclock.Clock, cal simclock.Calibration) ClientOption {
	return func(c *Client) {
		c.clock = clock
		c.cal = cal
		c.timed = true
	}
}

// WithPositionMap substitutes a custom position map (e.g. recursive).
func WithPositionMap(pm PositionMap) ClientOption {
	return func(c *Client) { c.pos = pm }
}

// NewClient creates a client over a server with the shared ORAM key.
func NewClient(server Server, key []byte, opts ...ClientOption) (*Client, error) {
	crypt, err := newCryptor(key)
	if err != nil {
		return nil, err
	}
	c := &Client{
		server: server,
		crypt:  crypt,
		stash:  make(map[BlockID]*block),
		depth:  server.Depth(),
		leaves: server.Leaves(),
	}
	c.pathIdx = make([]uint64, c.depth)
	c.levelLists = make([][]*block, c.depth)
	c.outCts = make([][]byte, c.depth)
	for _, opt := range opts {
		opt(c)
	}
	if c.pos == nil {
		c.pos = NewFlatPositionMap(c.leaves)
	}
	return c, nil
}

// Read fetches a block. Missing blocks return ErrNotFound after a full
// (oblivious) path access, so lookups are indistinguishable.
func (c *Client) Read(id BlockID) ([]byte, error) {
	data, err := c.access(OpRead, id, nil)
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, ErrNotFound
	}
	return data, nil
}

// Write stores a block (padding data to BlockSize).
func (c *Client) Write(id BlockID, data []byte) error {
	if len(data) > BlockSize {
		return ErrBlockTooBig
	}
	_, err := c.access(OpWrite, id, data)
	return err
}

// BatchOp is one logical operation inside an AccessBatch.
type BatchOp struct {
	Op   Op
	ID   BlockID
	Data []byte // OpWrite payload, at most BlockSize
}

// ReadMany fetches many blocks with ONE server round trip for the
// whole set (ReadPaths + WritePaths) instead of one per block. The
// result is aligned with ids; missing blocks yield nil entries, each
// after a full oblivious path access. Every id still gets its own
// fresh remap and uniform leaf, so the adversary-visible leaf
// sequence is distributed exactly as for sequential accesses.
func (c *Client) ReadMany(ids []BlockID) ([][]byte, error) {
	ops := c.batchOps[:0]
	for _, id := range ids {
		ops = append(ops, BatchOp{Op: OpRead, ID: id})
	}
	c.batchOps = ops
	return c.AccessBatch(ops)
}

// AccessBatch performs a mixed read/write batch in one server round
// trip. The returned slice is aligned with ops and holds each block's
// prior contents (nil when absent).
func (c *Client) AccessBatch(ops []BatchOp) (res [][]byte, err error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if len(ops) == 1 {
		out, err := c.access(ops[0].Op, ops[0].ID, ops[0].Data)
		if err != nil {
			return nil, err
		}
		return [][]byte{out}, nil
	}
	for _, op := range ops {
		if op.Op == OpWrite && len(op.Data) > BlockSize {
			return nil, ErrBlockTooBig
		}
	}
	if c.ttr != nil && c.tparent.Valid() {
		// Attribute values are sizes only — never block ids or leaf
		// positions (the secretflow sink discipline).
		tsp := c.ttr.StartSpan("oram.batch", c.tparent)
		tsp.AddInt("blocks", int64(len(ops)))
		defer func() {
			tsp.SetError(err)
			tsp.End()
		}()
	}
	sp := telemetry.StartSpan(c.tm != nil)
	bytesBefore := c.bytesMoved

	// Remap every block before touching the server (obliviousness
	// requirement): each op draws its own uniform leaf, exactly as in
	// the sequential protocol.
	leaves := c.batchLeaves[:0]
	newLeaves := c.batchNew[:0]
	for _, op := range ops {
		leaf, known := c.pos.Get(op.ID)
		if !known {
			leaf = randomLeaf(c.leaves)
		}
		nl := randomLeaf(c.leaves)
		leaves = append(leaves, leaf)
		newLeaves = append(newLeaves, nl)
		c.pos.Set(op.ID, nl)
	}
	c.batchLeaves, c.batchNew = leaves, newLeaves

	paths, err := c.server.ReadPaths(leaves)
	if err != nil {
		return nil, err
	}
	if len(paths) != len(leaves) {
		return nil, fmt.Errorf("%w: got %d paths, want %d", ErrBadBucket, len(paths), len(leaves))
	}
	// Absorb each path once; buckets shared between paths in the batch
	// are decrypted only once.
	c.seenNodes = c.seenNodes[:0]
	for i, encrypted := range paths {
		pathIndicesInto(leaves[i], c.depth, c.pathIdx)
		if err := c.absorbPath(c.pathIdx, encrypted, true); err != nil {
			return nil, err
		}
	}

	out := make([][]byte, len(ops))
	for i, op := range ops {
		blk, ok := c.stash[op.ID]
		if ok {
			blk.leaf = newLeaves[i]
			data := make([]byte, BlockSize)
			copy(data, blk.data)
			out[i] = data
		}
		if op.Op == OpWrite {
			if !ok {
				blk = getBlockStruct()
				blk.id = op.ID
				c.stash[op.ID] = blk //hardtape:pool-ok stash takes custody; eviction recycles via putBlockStruct
			}
			blk.leaf = newLeaves[i]
			n := copy(blk.data, op.Data)
			for j := n; j < BlockSize; j++ {
				blk.data[j] = 0
			}
		}
	}

	if err := c.evictPaths(leaves); err != nil {
		return nil, err
	}

	c.accesses += uint64(len(ops))
	c.batches++
	if len(c.stash) > c.maxStash {
		c.maxStash = len(c.stash)
	}
	c.recordAccess(&sp, uint64(len(ops)), c.bytesMoved-bytesBefore, true)
	if len(c.stash) > stashSafetyFactor*c.depth+BucketSize*len(ops) {
		return nil, fmt.Errorf("%w: %d blocks at depth %d", ErrStashOverrun, len(c.stash), c.depth)
	}
	if c.timed {
		c.chargeBatch(len(ops))
	}
	return out, nil
}

// access is the Path ORAM protocol: remap, read path into stash,
// mutate, evict path.
func (c *Client) access(op Op, id BlockID, newData []byte) ([]byte, error) {
	sp := telemetry.StartSpan(c.tm != nil)
	bytesBefore := c.bytesMoved
	leaf, known := c.pos.Get(id)
	if !known {
		leaf = randomLeaf(c.leaves)
	}
	// Remap before touching the server (obliviousness requirement).
	newLeaf := randomLeaf(c.leaves)
	c.pos.Set(id, newLeaf)

	if err := c.readPathIntoStash(leaf); err != nil {
		return nil, err
	}

	var out []byte
	blk, ok := c.stash[id]
	if ok {
		blk.leaf = newLeaf
		out = make([]byte, BlockSize)
		copy(out, blk.data)
	}
	if op == OpWrite {
		if !ok {
			blk = getBlockStruct()
			blk.id = id
			c.stash[id] = blk //hardtape:pool-ok stash takes custody; eviction recycles via putBlockStruct
		}
		blk.leaf = newLeaf
		n := copy(blk.data, newData)
		for i := n; i < BlockSize; i++ {
			blk.data[i] = 0
		}
	}

	if err := c.evictPath(leaf); err != nil {
		return nil, err
	}

	c.accesses++
	if len(c.stash) > c.maxStash {
		c.maxStash = len(c.stash)
	}
	c.recordAccess(&sp, 1, c.bytesMoved-bytesBefore, false)
	if len(c.stash) > stashSafetyFactor*c.depth {
		return nil, fmt.Errorf("%w: %d blocks at depth %d", ErrStashOverrun, len(c.stash), c.depth)
	}
	if c.timed {
		c.chargeAccess()
	}
	return out, nil
}

// readPathIntoStash decrypts one path and absorbs its real blocks.
func (c *Client) readPathIntoStash(leaf uint64) error {
	encrypted, err := c.server.ReadPath(leaf)
	if err != nil {
		return err
	}
	pathIndicesInto(leaf, c.depth, c.pathIdx)
	return c.absorbPath(c.pathIdx, encrypted, false)
}

// absorbPath decrypts a path's buckets into the stash. Each real block
// is copied exactly once, into a pooled buffer; the decrypted bucket
// plaintext itself lives in a pooled scratch buffer. With dedup set,
// buckets already seen by an earlier path of the same batch are
// skipped (c.seenNodes carries the batch's visited node set). The
// received ciphertexts are owned by the client (both MemServer and the
// TCP transport hand over fresh copies) and recycle to the cipher pool
// here once consumed.
func (c *Client) absorbPath(idx []uint64, encrypted [][]byte, dedup bool) error {
	if len(encrypted) > len(idx) {
		return fmt.Errorf("%w: %d buckets on a depth-%d path", ErrBadBucket, len(encrypted), len(idx))
	}
	pt := getPlainBuf()
	defer putPlainBuf(pt)
	for i, ct := range encrypted {
		if len(ct) == 0 {
			continue // never-written bucket
		}
		if dedup {
			if containsU64(c.seenNodes, idx[i]) {
				putCipherBuf(ct)
				encrypted[i] = nil
				continue
			}
			c.seenNodes = append(c.seenNodes, idx[i])
		}
		ptb, err := c.crypt.openInto(idx[i], ct, pt[:0])
		if err != nil {
			return err
		}
		c.bytesMoved += uint64(len(ct))
		putCipherBuf(ct)
		encrypted[i] = nil
		bkt := &c.scratchBkt
		if err := parseBucketInto(bkt, ptb); err != nil {
			return err
		}
		for _, s := range bkt.slots {
			if uint64(s.id) == dummyID {
				continue
			}
			if _, ok := c.stash[s.id]; ok {
				// The stash copy is authoritative: a block lives in
				// exactly one place, so a tree copy next to a stash
				// copy can only be a stale duplicate.
				continue
			}
			blk := getBlockStruct()
			blk.id, blk.leaf = s.id, s.leaf
			copy(blk.data, s.data)
			c.stash[s.id] = blk //hardtape:pool-ok stash takes custody; eviction recycles via putBlockStruct
		}
	}
	return nil
}

// containsU64 reports whether v is in s (linear scan: batch node sets
// are tens of entries, where a map would hash and allocate).
func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// evictPath greedily pushes stash blocks as deep as possible along the
// just-read path, then re-encrypts and writes every bucket back.
//
// Instead of rescanning the whole stash per level (O(stash·depth)),
// blocks are bucketed once by the deepest level at which their own
// path intersects the eviction path; a block with intersection level
// L can live at any level ≤ L, so unplaced blocks cascade toward the
// root as the fill proceeds deepest-first.
func (c *Client) evictPath(leaf uint64) error {
	pathIndicesInto(leaf, c.depth, c.pathIdx)

	lists := c.levelLists
	for i := range lists {
		lists[i] = lists[i][:0]
	}
	for _, blk := range c.stash {
		l := intersectLevel(blk.leaf, leaf, c.depth)
		lists[l] = append(lists[l], blk)
	}

	carry := c.carry[:0]
	pt := getPlainBuf()
	defer putPlainBuf(pt)
	out := c.outCts
	for level := c.depth - 1; level >= 0; level-- {
		carry = append(carry, lists[level]...)
		var bkt bucket
		filled := 0
		for filled < BucketSize && len(carry) > 0 {
			blk := carry[len(carry)-1]
			carry = carry[:len(carry)-1]
			bkt.slots[filled] = *blk
			filled++
			delete(c.stash, blk.id)
			blk.data = nil // ownership moved into the bucket slot
			putBlockStruct(blk)
		}
		for i := filled; i < BucketSize; i++ {
			bkt.slots[i].id = BlockID(dummyID)
			bkt.slots[i].data = nil
		}
		bkt.serializeInto(pt)
		for i := 0; i < filled; i++ {
			putBlockBuf(bkt.slots[i].data)
		}
		ct, err := c.crypt.sealInto(c.pathIdx[level], pt, getCipherBuf())
		if err != nil {
			return err
		}
		out[level] = ct
		c.bytesMoved += uint64(len(ct))
	}
	//hardtape:pool-ok scratch slice keeps capacity only; leftover blocks remain stash-owned
	c.carry = carry[:0]

	err := c.server.WritePath(leaf, out)
	for i, ct := range out {
		putCipherBuf(ct)
		out[i] = nil
	}
	return err
}

// evictPaths is the batched eviction: the union of the just-read
// paths' buckets is refilled deepest-first from the full stash, each
// unique bucket is sealed once, and all paths are written back in a
// single server round trip. Buckets shared between paths carry the
// same ciphertext in every containing path, so the server state is
// identical to writing the deduplicated set.
//
// All working state lives in reused client scratch; node lookups are
// linear scans over per-level segments of at most len(leaves) entries.
func (c *Client) evictPaths(leaves []uint64) error {
	depth := c.depth

	// Unique path nodes, level-major: batchNodes[offs[l]:offs[l+1]]
	// holds level l's nodes, first-occurrence order.
	nodes := c.batchNodes[:0]
	offs := c.batchOffs[:0]
	for level := 0; level < depth; level++ {
		offs = append(offs, len(nodes))
		shift := uint(depth - 1 - level)
		for _, leaf := range leaves {
			nd := (leaf + (uint64(1) << (depth - 1))) >> shift
			if !containsU64(nodes[offs[level]:], nd) {
				nodes = append(nodes, nd)
			}
		}
	}
	offs = append(offs, len(nodes))
	c.batchNodes, c.batchOffs = nodes, offs

	// Reset the bucket scratch, one (empty) bucket per unique node.
	if cap(c.batchBkts) < len(nodes) {
		c.batchBkts = make([]bucket, len(nodes))
		c.batchFill = make([]int, len(nodes))
		c.batchCts = make([][]byte, len(nodes))
	}
	bkts := c.batchBkts[:len(nodes)]
	fill := c.batchFill[:len(nodes)]
	for i := range bkts {
		fill[i] = 0
		for si := range bkts[i].slots {
			bkts[i].slots[si].id = BlockID(dummyID)
			bkts[i].slots[si].data = nil
		}
	}

	// Fill deepest-first: at each level, one stash pass assigns each
	// block to its (unique) ancestor bucket at that level, if present
	// in the batch and not yet full.
	for level := depth - 1; level >= 0; level-- {
		seg := nodes[offs[level]:offs[level+1]]
		if len(seg) == 0 {
			continue
		}
		shift := uint(depth - 1 - level)
		for id, blk := range c.stash {
			nd := (blk.leaf + (uint64(1) << (depth - 1))) >> shift
			bi := -1
			for j, x := range seg {
				if x == nd {
					bi = offs[level] + j
					break
				}
			}
			if bi < 0 || fill[bi] == BucketSize {
				continue
			}
			bkts[bi].slots[fill[bi]] = *blk
			fill[bi]++
			delete(c.stash, id)
			blk.data = nil // ownership moved into the bucket slot
			putBlockStruct(blk)
		}
	}

	pt := getPlainBuf()
	defer putPlainBuf(pt)
	cts := c.batchCts[:len(nodes)]
	for i := range bkts {
		bkts[i].serializeInto(pt)
		for si := 0; si < fill[i]; si++ {
			putBlockBuf(bkts[i].slots[si].data)
			bkts[i].slots[si].data = nil
		}
		ct, err := c.crypt.sealInto(nodes[i], pt, getCipherBuf())
		if err != nil {
			return err
		}
		cts[i] = ct
		c.bytesMoved += uint64(len(ct))
	}

	// Expand the deduplicated set to per-path bucket lists; duplicates
	// share one ciphertext slice (idempotent rewrites server-side).
	if cap(c.outPathBufs) < len(leaves)*depth {
		c.outPathBufs = make([][]byte, len(leaves)*depth)
		c.outPaths = make([][][]byte, 0, len(leaves))
	}
	flat := c.outPathBufs[:len(leaves)*depth]
	outPaths := c.outPaths[:0]
	for i, leaf := range leaves {
		path := flat[i*depth : (i+1)*depth]
		for level := 0; level < depth; level++ {
			nd := (leaf + (uint64(1) << (depth - 1))) >> uint(depth-1-level)
			seg := nodes[offs[level]:offs[level+1]]
			for j, x := range seg {
				if x == nd {
					path[level] = cts[offs[level]+j]
					break
				}
			}
		}
		outPaths = append(outPaths, path)
	}
	c.outPaths = outPaths

	err := c.server.WritePaths(leaves, outPaths)
	for i := range cts {
		putCipherBuf(cts[i])
		cts[i] = nil
	}
	for i := range flat {
		flat[i] = nil
	}
	return err
}

// pathNode returns the heap index of the given level on leaf's path.
func (c *Client) pathNode(leaf uint64, level int) uint64 {
	node := leaf + (uint64(1) << (c.depth - 1))
	return node >> uint(c.depth-1-level)
}

// chargeAccess advances the virtual clock for one path access.
func (c *Client) chargeAccess() {
	c.clock.Advance(c.cal.ORAMBatchCost(1, c.depth*BucketSize))
}

// chargeBatch advances the virtual clock for a batched access: the
// link RTT is paid once for the whole batch (the queries travel in one
// pipelined message), while server processing and per-block client
// work remain serial per query.
func (c *Client) chargeBatch(n int) {
	c.clock.Advance(c.cal.ORAMBatchCost(n, n*c.depth*BucketSize))
}

// Stats reports client counters.
type Stats struct {
	Accesses uint64
	// Batches counts AccessBatch round trips (each covering one or
	// more of the Accesses).
	Batches    uint64
	MaxStash   int
	StashSize  int
	BytesMoved uint64
	Depth      int
	// Shards is the shard count behind the accessor (0 or 1 for a
	// single-tree Client; K for a ShardedClient).
	Shards int
}

// Stats returns the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Accesses:   c.accesses,
		Batches:    c.batches,
		MaxStash:   c.maxStash,
		StashSize:  len(c.stash),
		BytesMoved: c.bytesMoved,
		Depth:      c.depth,
	}
}
