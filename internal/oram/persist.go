package oram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Checkpointing makes the ORAM client state durable with a
// shadow-epoch scheme:
//
//   - Each checkpoint serializes the client's private state — stash
//     blocks and the (flat) position map — and seals it with AES-GCM
//     under a key derived from the master ORAM key, binding the epoch
//     number as associated data. The sealed snapshot is the only thing
//     on disk that is trusted-state-derived; like bucket ciphertexts,
//     it leaks only its size.
//   - Snapshots alternate between two slot files (state-0.ckpt /
//     state-1.ckpt), each written to a temp file, fsynced, and renamed
//     into place, so a crash mid-write never destroys the previous
//     epoch's snapshot.
//   - A MANIFEST file (also written atomically) names the latest
//     complete epoch. Recovery reads the manifest, opens the epoch it
//     names, and authenticates it; any corruption — of the manifest,
//     the snapshot, or a replayed snapshot under the wrong epoch —
//     surfaces as ErrTampered.
//
// The bucket file is synced BEFORE the manifest is published
// (ShardedClient.Checkpoint), so a published checkpoint never
// references tree state that might not have hit the disk.
const (
	manifestName  = "MANIFEST"
	manifestMagic = "HTCKPT1\x00"
)

// ErrNoCheckpoint reports a store with no published checkpoint.
var ErrNoCheckpoint = errors.New("oram: no checkpoint")

// CheckpointStore persists one client's stash + position map in a
// directory. It shares its owning client's single-goroutine contract.
type CheckpointStore struct {
	dir   string
	crypt *cryptor
	epoch uint64
}

// NewCheckpointStore opens (or initializes) a checkpoint directory.
// The sealing key is derived from the master ORAM key and the label
// (shard index), domain-separated from every bucket key.
func NewCheckpointStore(dir string, masterKey []byte, label string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("oram: checkpoint dir: %w", err)
	}
	crypt, err := newCryptor(deriveShardKey(masterKey, "hardtape-oram-ckpt-"+label))
	if err != nil {
		return nil, err
	}
	cs := &CheckpointStore{dir: dir, crypt: crypt}
	epoch, err := cs.readManifest()
	if err != nil && !errors.Is(err, ErrNoCheckpoint) {
		return nil, err
	}
	cs.epoch = epoch
	return cs, nil
}

// Epoch returns the latest published checkpoint epoch (0 = none).
func (cs *CheckpointStore) Epoch() uint64 { return cs.epoch }

// slotPath returns the shadow slot file an epoch lives in.
func (cs *CheckpointStore) slotPath(epoch uint64) string {
	return filepath.Join(cs.dir, fmt.Sprintf("state-%d.ckpt", epoch%2))
}

// readManifest returns the published epoch.
func (cs *CheckpointStore) readManifest() (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(cs.dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, ErrNoCheckpoint
	}
	if err != nil {
		return 0, fmt.Errorf("oram: read manifest: %w", err)
	}
	if len(raw) != 16 || string(raw[:8]) != manifestMagic {
		return 0, fmt.Errorf("%w: malformed checkpoint manifest", ErrTampered)
	}
	epoch := binary.BigEndian.Uint64(raw[8:])
	if epoch == 0 {
		return 0, fmt.Errorf("%w: manifest names epoch 0", ErrTampered)
	}
	return epoch, nil
}

// writeAtomic writes data to name via a temp file + fsync + rename, the
// classic crash-safe publish.
func (cs *CheckpointStore) writeAtomic(name string, data []byte) error {
	tmp := filepath.Join(cs.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("oram: checkpoint write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("oram: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("oram: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("oram: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(cs.dir, name)); err != nil {
		return fmt.Errorf("oram: checkpoint publish: %w", err)
	}
	return nil
}

// Checkpoint seals and publishes the client's current stash + position
// map as the next epoch. The position map must be flat (the recursive
// map's state lives inside its parent ORAM and is not snapshotable
// here).
func (cs *CheckpointStore) Checkpoint(c *Client) error {
	fp, ok := c.pos.(*FlatPositionMap)
	if !ok {
		return fmt.Errorf("%w: checkpointing requires a flat position map", ErrShards)
	}
	plain := make([]byte, 0, 16+len(c.stash)*(16+BlockSize)+len(fp.m)*16)
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], uint64(len(c.stash)))
	plain = append(plain, u[:]...)
	for id, blk := range c.stash {
		binary.BigEndian.PutUint64(u[:], uint64(id))
		plain = append(plain, u[:]...)
		binary.BigEndian.PutUint64(u[:], blk.leaf)
		plain = append(plain, u[:]...)
		plain = append(plain, blk.data...)
	}
	binary.BigEndian.PutUint64(u[:], uint64(len(fp.m)))
	plain = append(plain, u[:]...)
	for id, leaf := range fp.m {
		binary.BigEndian.PutUint64(u[:], uint64(id))
		plain = append(plain, u[:]...)
		binary.BigEndian.PutUint64(u[:], leaf)
		plain = append(plain, u[:]...)
	}

	epoch := cs.epoch + 1
	sealed, err := cs.crypt.seal(epoch, plain)
	if err != nil {
		return err
	}
	if err := cs.writeAtomic(filepath.Base(cs.slotPath(epoch)), sealed); err != nil {
		return err
	}
	var manifest [16]byte
	copy(manifest[:8], manifestMagic)
	binary.BigEndian.PutUint64(manifest[8:], epoch)
	if err := cs.writeAtomic(manifestName, manifest[:]); err != nil {
		return err
	}
	cs.epoch = epoch
	return nil
}

// Restore loads the latest published checkpoint into the client,
// replacing its stash and position map contents. It returns false
// (and no error) when the store has never checkpointed; corruption of
// the manifest or snapshot returns ErrTampered.
func (cs *CheckpointStore) Restore(c *Client) (bool, error) {
	epoch, err := cs.readManifest()
	if errors.Is(err, ErrNoCheckpoint) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	sealed, err := os.ReadFile(cs.slotPath(epoch))
	if errors.Is(err, fs.ErrNotExist) {
		return false, fmt.Errorf("%w: manifest names epoch %d but its snapshot is missing", ErrTampered, epoch)
	}
	if err != nil {
		return false, fmt.Errorf("oram: read checkpoint: %w", err)
	}
	// The epoch is the associated data: a valid snapshot moved to the
	// wrong slot, or an old snapshot replayed under a newer manifest,
	// fails authentication exactly like a flipped byte.
	plain, err := cs.crypt.open(epoch, sealed)
	if err != nil {
		return false, err
	}
	fp, ok := c.pos.(*FlatPositionMap)
	if !ok {
		return false, fmt.Errorf("%w: restoring requires a flat position map", ErrShards)
	}
	off := 0
	readU64 := func() (uint64, bool) {
		if off+8 > len(plain) {
			return 0, false
		}
		v := binary.BigEndian.Uint64(plain[off:])
		off += 8
		return v, true
	}
	nStash, ok1 := readU64()
	if !ok1 {
		return false, fmt.Errorf("%w: truncated checkpoint", ErrTampered)
	}
	for i := uint64(0); i < nStash; i++ {
		id, ok1 := readU64()
		leaf, ok2 := readU64()
		if !ok1 || !ok2 || off+BlockSize > len(plain) {
			return false, fmt.Errorf("%w: truncated checkpoint stash", ErrTampered)
		}
		blk := getBlockStruct()
		blk.id, blk.leaf = BlockID(id), leaf
		copy(blk.data, plain[off:off+BlockSize])
		off += BlockSize
		c.stash[blk.id] = blk //hardtape:pool-ok stash takes custody; eviction recycles via putBlockStruct
	}
	nPos, ok1 := readU64()
	if !ok1 {
		return false, fmt.Errorf("%w: truncated checkpoint", ErrTampered)
	}
	for i := uint64(0); i < nPos; i++ {
		id, ok1 := readU64()
		leaf, ok2 := readU64()
		if !ok1 || !ok2 {
			return false, fmt.Errorf("%w: truncated checkpoint posmap", ErrTampered)
		}
		fp.m[BlockID(id)] = leaf
	}
	if off != len(plain) {
		return false, fmt.Errorf("%w: checkpoint trailing bytes", ErrTampered)
	}
	cs.epoch = epoch
	return true, nil
}

// Checkpoint syncs every durable shard server and publishes each
// shard's client state as a new epoch. Requires WithShardPersistence
// (or OpenShardedStore).
func (s *ShardedClient) Checkpoint() error {
	if s.stores == nil {
		return fmt.Errorf("%w: no checkpoint stores attached", ErrShards)
	}
	// Bucket durability first: a published checkpoint must never
	// reference tree state still sitting in the page cache.
	if err := s.Sync(); err != nil {
		return err
	}
	for i, cs := range s.stores {
		if err := cs.Checkpoint(s.shards[i]); err != nil {
			return fmt.Errorf("oram: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

// OpenShardedStore opens (or creates) a persistent sharded ORAM under
// dir: one disk-backed bucket file and one checkpoint store per shard,
// with the total block capacity split evenly across shards. When the
// directory holds published checkpoints, every shard's stash and
// position map are restored, so the client resumes mid-workload
// exactly where the last checkpoint left it. Checkpoints publish every
// ckptEvery batches (≤ 0 means every batch — the cadence that makes
// recovery exact to the last completed batch; larger cadences trade
// that precision for throughput and on a crash roll back to the last
// boundary, re-losing blocks whose tree position moved since).
func OpenShardedStore(dir string, shards int, capacity uint64, key []byte, ckptEvery int, opts ...ShardOption) (*ShardedClient, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: %d shards", ErrShards, shards)
	}
	perShard := (capacity + uint64(shards) - 1) / uint64(shards)
	if perShard < 2 {
		perShard = 2
	}
	servers := make([]Server, shards)
	stores := make([]*CheckpointStore, shards)
	cleanup := func() {
		for _, srv := range servers {
			if fsrv, ok := srv.(*FileServer); ok && fsrv != nil {
				fsrv.Close()
			}
		}
	}
	for i := 0; i < shards; i++ {
		shardDir := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(shardDir, 0o700); err != nil {
			cleanup()
			return nil, fmt.Errorf("oram: shard dir: %w", err)
		}
		srv, err := OpenFileServer(filepath.Join(shardDir, "buckets.dat"), perShard)
		if err != nil {
			cleanup()
			return nil, err
		}
		servers[i] = srv
		cs, err := NewCheckpointStore(shardDir, key, fmt.Sprintf("%d", i))
		if err != nil {
			cleanup()
			return nil, err
		}
		stores[i] = cs
	}
	opts = append(opts, WithShardPersistence(stores, ckptEvery))
	sc, err := NewShardedClient(servers, key, opts...)
	if err != nil {
		cleanup()
		return nil, err
	}
	for i, cs := range stores {
		if _, err := cs.Restore(sc.shards[i]); err != nil {
			cleanup()
			//hardtape:secret-ok the wrapped error carries epoch/file context only, never key or snapshot bytes
			return nil, fmt.Errorf("oram: recover shard %d: %w", i, err)
		}
	}
	return sc, nil
}
