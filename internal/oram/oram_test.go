package oram

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"testing"
	"testing/quick"
	"time"

	"hardtape/internal/simclock"
)

func testKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i * 7)
	}
	return key
}

func newTestORAM(t testing.TB, capacity uint64, opts ...ClientOption) (*Client, *MemServer) {
	t.Helper()
	srv, err := NewMemServer(capacity)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(srv, testKey(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cli, srv
}

func TestReadWriteRoundTrip(t *testing.T) {
	cli, _ := newTestORAM(t, 64)
	data := []byte("hello oblivious world")
	if err := cli.Write(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("read = %q", got[:len(data)])
	}
	if len(got) != BlockSize {
		t.Fatalf("blocks must be fixed size, got %d", len(got))
	}
}

func TestReadMissing(t *testing.T) {
	cli, _ := newTestORAM(t, 64)
	if _, err := cli.Read(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing block: %v", err)
	}
	// A miss still performs a full path access (oblivious lookups).
	if cli.Stats().Accesses != 1 {
		t.Fatal("miss should still access a path")
	}
}

func TestOversizeBlock(t *testing.T) {
	cli, _ := newTestORAM(t, 64)
	if err := cli.Write(1, make([]byte, BlockSize+1)); !errors.Is(err, ErrBlockTooBig) {
		t.Fatalf("oversize: %v", err)
	}
}

func TestManyBlocksSurviveShuffling(t *testing.T) {
	const n = 200
	cli, _ := newTestORAM(t, 256)
	for i := 0; i < n; i++ {
		if err := cli.Write(BlockID(i), []byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Random re-reads in scrambled order.
	rng := mrand.New(mrand.NewSource(1))
	for _, i := range rng.Perm(n) {
		got, err := cli.Read(BlockID(i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("block-%d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("block %d corrupted: %q", i, got[:len(want)])
		}
	}
}

func TestOverwrite(t *testing.T) {
	cli, _ := newTestORAM(t, 64)
	if err := cli.Write(5, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(5, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:2]) != "v2" {
		t.Fatalf("overwrite lost: %q", got[:2])
	}
}

func TestStashStaysBounded(t *testing.T) {
	cli, _ := newTestORAM(t, 512)
	rng := mrand.New(mrand.NewSource(42))
	for i := 0; i < 400; i++ {
		if err := cli.Write(BlockID(i%300), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := cli.Read(BlockID(rng.Intn(i + 1))); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
		}
	}
	stats := cli.Stats()
	// Theory: stash is O(log n) whp. depth for 512 blocks = 8; allow
	// a generous constant but far below the safety bound.
	if stats.MaxStash > 8*stats.Depth {
		t.Fatalf("stash grew to %d (depth %d)", stats.MaxStash, stats.Depth)
	}
}

func TestTamperDetection(t *testing.T) {
	cli, srv := newTestORAM(t, 64)
	if err := cli.Write(1, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// Tamper one bucket on leaf 0's path: the first non-empty bucket is
	// the root, which every subsequent path read must traverse.
	srv.TamperBucket(0)
	if _, err := cli.Read(1); !errors.Is(err, ErrTampered) {
		t.Fatalf("tamper: %v", err)
	}
}

func TestBucketRelocationDetected(t *testing.T) {
	// Moving a ciphertext to a different bucket index must fail AD
	// authentication.
	c, err := newCryptor(testKey())
	if err != nil {
		t.Fatal(err)
	}
	pt := newEmptyBucket().serialize()
	ct, err := c.seal(5, pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.open(5, ct); err != nil {
		t.Fatalf("legitimate open failed: %v", err)
	}
	if _, err := c.open(6, ct); !errors.Is(err, ErrTampered) {
		t.Fatalf("relocated bucket accepted: %v", err)
	}
}

func TestRandomizedReEncryption(t *testing.T) {
	// The same plaintext sealed twice must produce different ciphertexts.
	c, err := newCryptor(testKey())
	if err != nil {
		t.Fatal(err)
	}
	pt := newEmptyBucket().serialize()
	ct1, err := c.seal(1, pt)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := c.seal(1, pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("re-encryption is deterministic — linkable ciphertexts")
	}
}

func TestLeafSequenceLooksUniform(t *testing.T) {
	// The adversary-observed leaf sequence must not depend on which
	// block is accessed: hammer a single block and check the observed
	// leaves cover the leaf space (a fixed block would otherwise show a
	// fixed path). Chi-square against uniform with generous bounds.
	var leaves []uint64
	srv, err := NewMemServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetObserver(func(ev AccessEvent) {
		if !ev.Write {
			leaves = append(leaves, ev.Leaf)
		}
	})
	cli, err := NewClient(srv, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(99, []byte("hot block")); err != nil {
		t.Fatal(err)
	}
	const reads = 2000
	for i := 0; i < reads; i++ {
		if _, err := cli.Read(99); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[uint64]int)
	for _, l := range leaves {
		counts[l]++
	}
	n := srv.Leaves()
	// Expect ≈ reads/n per leaf; chi-square statistic should be near n.
	expected := float64(len(leaves)) / float64(n)
	var chi2 float64
	for leaf := uint64(0); leaf < n; leaf++ {
		diff := float64(counts[leaf]) - expected
		chi2 += diff * diff / expected
	}
	// df = n-1; mean df, stdev sqrt(2 df). Allow 6 sigma.
	df := float64(n - 1)
	if chi2 > df+6*1.4142*df { // crude but stable bound
		t.Fatalf("leaf distribution non-uniform: chi2=%.1f df=%.0f", chi2, df)
	}
	// And the hot block's own path must not dominate.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount) > 10*expected {
		t.Fatalf("one leaf appears %dx (expected %.1f) — access pattern leaks", maxCount, expected)
	}
}

func TestConcurrentClientsSharedServer(t *testing.T) {
	// Path ORAM is stateless server-side: two clients with the same key
	// can share a server, each managing disjoint block id ranges.
	srv, err := NewMemServer(256)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewClient(srv, testKey())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(srv, testKey())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		var firstErr error
		for i := 0; i < 50; i++ {
			if err := c1.Write(BlockID(i), []byte{1, byte(i)}); err != nil {
				firstErr = err
				break
			}
		}
		done <- firstErr
	}()
	// NOTE: clients are not internally synchronized; interleaved path
	// writes can race on shared buckets. Production (and the paper)
	// serializes through the Hypervisor; here we run c2 after c1.
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c2.Write(BlockID(1000+i), []byte{2, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, err := c2.Read(BlockID(1000 + i))
		if err != nil {
			t.Fatalf("c2 read %d: %v", i, err)
		}
		if got[0] != 2 || got[1] != byte(i) {
			t.Fatalf("c2 block %d corrupted", i)
		}
	}
}

func TestClockCharging(t *testing.T) {
	clock := simclock.NewClock()
	cal := simclock.DefaultCalibration()
	cli, _ := newTestORAM(t, 64, WithClock(clock, cal))
	if err := cli.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now()
	if elapsed < cal.ORAMLinkRTT {
		t.Fatalf("access should cost at least one RTT, got %v", elapsed)
	}
	if elapsed > cal.ORAMLinkRTT+10*time.Millisecond {
		t.Fatalf("access cost implausibly high: %v", elapsed)
	}
}

func TestRecursivePositionMap(t *testing.T) {
	pmKey := make([]byte, KeySize)
	if _, err := rand.Read(pmKey); err != nil {
		t.Fatal(err)
	}
	pm, err := NewRecursivePositionMap(2048, pmKey)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewMemServer(2048)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(srv, testKey(), WithPositionMap(pm))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := cli.Write(BlockID(i*13), []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := cli.Read(BlockID(i * 13))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("block %d corrupted", i)
		}
	}
	if pm.ParentStats().Accesses == 0 {
		t.Fatal("recursive map never touched its parent ORAM")
	}
}

func TestInvalidConstruction(t *testing.T) {
	if _, err := NewMemServer(1); !errors.Is(err, ErrCapacity) {
		t.Errorf("capacity 1: %v", err)
	}
	srv, err := NewMemServer(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(srv, []byte("short")); !errors.Is(err, ErrBadKey) {
		t.Errorf("short key: %v", err)
	}
}

func TestPathIndices(t *testing.T) {
	// depth 3: heap nodes 1..7, leaves are 4,5,6,7 (leaf index 0..3).
	idx := pathIndices(0, 3)
	want := []uint64{1, 2, 4}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("pathIndices(0,3) = %v, want %v", idx, want)
		}
	}
	idx = pathIndices(3, 3)
	want = []uint64{1, 3, 7}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("pathIndices(3,3) = %v, want %v", idx, want)
		}
	}
	// All paths share the root.
	for leaf := uint64(0); leaf < 4; leaf++ {
		if pathIndices(leaf, 3)[0] != 1 {
			t.Fatal("all paths must include the root")
		}
	}
}

func TestBucketSerializationRoundTrip(t *testing.T) {
	b := newEmptyBucket()
	b.slots[0] = block{id: 7, leaf: 3, data: bytes.Repeat([]byte{0xaa}, BlockSize)}
	b.slots[2] = block{id: 9, leaf: 1, data: bytes.Repeat([]byte{0xbb}, BlockSize)}
	back, err := parseBucket(b.serialize())
	if err != nil {
		t.Fatal(err)
	}
	if back.slots[0].id != 7 || back.slots[0].leaf != 3 || back.slots[0].data[0] != 0xaa {
		t.Fatal("slot 0 mismatch")
	}
	if uint64(back.slots[1].id) != dummyID || back.slots[1].data != nil {
		t.Fatal("dummy slot should stay dummy")
	}
	if back.slots[2].id != 9 {
		t.Fatal("slot 2 mismatch")
	}
	if _, err := parseBucket([]byte("short")); !errors.Is(err, ErrBadBucket) {
		t.Fatalf("short bucket: %v", err)
	}
}

// Property: the ORAM behaves exactly like a map under random ops.
func TestQuickORAMMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		srv, err := NewMemServer(128)
		if err != nil {
			return false
		}
		cli, err := NewClient(srv, testKey())
		if err != nil {
			return false
		}
		ref := map[BlockID][]byte{}
		for op := 0; op < 120; op++ {
			id := BlockID(rng.Intn(40))
			if rng.Intn(2) == 0 {
				v := []byte(fmt.Sprintf("v%d", rng.Intn(1000)))
				if err := cli.Write(id, v); err != nil {
					return false
				}
				ref[id] = v
			} else {
				got, err := cli.Read(id)
				want, exists := ref[id]
				if !exists {
					if !errors.Is(err, ErrNotFound) {
						return false
					}
					continue
				}
				if err != nil || !bytes.Equal(got[:len(want)], want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTreeDepth(t *testing.T) {
	tests := []struct {
		capacity uint64
		want     int
	}{
		{2, 2}, {4, 2}, {8, 2}, {9, 3}, {16, 3}, {64, 5}, {1024, 9},
	}
	for _, tt := range tests {
		if got := treeDepth(tt.capacity); got != tt.want {
			t.Errorf("treeDepth(%d) = %d, want %d", tt.capacity, got, tt.want)
		}
	}
}

func TestBatchReadWriteRoundTrip(t *testing.T) {
	cli, _ := newTestORAM(t, 256)
	ops := make([]BatchOp, 8)
	for i := range ops {
		ops[i] = BatchOp{Op: OpWrite, ID: BlockID(i), Data: []byte(fmt.Sprintf("batch-%d", i))}
	}
	if _, err := cli.AccessBatch(ops); err != nil {
		t.Fatal(err)
	}
	ids := make([]BlockID, 8)
	for i := range ids {
		ids[i] = BlockID(i)
	}
	got, err := cli.ReadMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("got %d results for %d ids", len(got), len(ids))
	}
	for i, data := range got {
		want := fmt.Sprintf("batch-%d", i)
		if data == nil || string(data[:len(want)]) != want {
			t.Fatalf("block %d corrupted in batch read", i)
		}
		if len(data) != BlockSize {
			t.Fatalf("batch blocks must be fixed size, got %d", len(data))
		}
	}
	// Batched and sequential paths interoperate on the same tree.
	one, err := cli.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(one[:7]) != "batch-3" {
		t.Fatal("sequential read after batch write failed")
	}
	if cli.Stats().Batches == 0 {
		t.Fatal("batches counter never bumped")
	}
}

func TestBatchMissingBlocks(t *testing.T) {
	cli, _ := newTestORAM(t, 64)
	if err := cli.Write(1, []byte("present")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.ReadMany([]BlockID{1, 42, 43})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == nil || got[1] != nil || got[2] != nil {
		t.Fatalf("missing blocks must be nil entries: %v", []bool{got[0] == nil, got[1] == nil, got[2] == nil})
	}
	// Misses still perform full oblivious path accesses.
	if cli.Stats().Accesses != 4 {
		t.Fatalf("accesses = %d, want 4", cli.Stats().Accesses)
	}
}

func TestBatchDuplicateIDs(t *testing.T) {
	cli, _ := newTestORAM(t, 64)
	if err := cli.Write(7, []byte("dup")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.ReadMany([]BlockID{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range got {
		if data == nil || string(data[:3]) != "dup" {
			t.Fatalf("duplicate id read %d failed", i)
		}
	}
	// And the block survives the multi-remap.
	after, err := cli.Read(7)
	if err != nil || string(after[:3]) != "dup" {
		t.Fatalf("block lost after duplicate batch: %v", err)
	}
}

// TestBatchLeafSequenceLooksUniform is the batched twin of
// TestLeafSequenceLooksUniform: hammering ONE block through ReadMany
// (including duplicate ids inside one batch) must still show a uniform
// adversary-observed leaf sequence, because every op in a batch draws
// its own fresh remap.
func TestBatchLeafSequenceLooksUniform(t *testing.T) {
	var leaves []uint64
	srv, err := NewMemServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetObserver(func(ev AccessEvent) {
		if !ev.Write {
			leaves = append(leaves, ev.Leaf)
		}
	})
	cli, err := NewClient(srv, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(99, []byte("hot block")); err != nil {
		t.Fatal(err)
	}
	const rounds = 500
	for i := 0; i < rounds; i++ {
		if _, err := cli.ReadMany([]BlockID{99, 99, 99, 99}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[uint64]int)
	for _, l := range leaves {
		counts[l]++
	}
	n := srv.Leaves()
	expected := float64(len(leaves)) / float64(n)
	var chi2 float64
	for leaf := uint64(0); leaf < n; leaf++ {
		diff := float64(counts[leaf]) - expected
		chi2 += diff * diff / expected
	}
	df := float64(n - 1)
	if chi2 > df+6*1.4142*df {
		t.Fatalf("batched leaf distribution non-uniform: chi2=%.1f df=%.0f", chi2, df)
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount) > 10*expected {
		t.Fatalf("one leaf appears %dx (expected %.1f) — batched access pattern leaks", maxCount, expected)
	}
}

// TestBatchStashStaysBounded is the batched twin of
// TestStashStaysBounded: union eviction must keep the stash O(log n)
// just like per-access eviction.
func TestBatchStashStaysBounded(t *testing.T) {
	cli, _ := newTestORAM(t, 512)
	rng := mrand.New(mrand.NewSource(43))
	for round := 0; round < 60; round++ {
		ops := make([]BatchOp, 8)
		for i := range ops {
			if rng.Intn(3) == 0 {
				ops[i] = BatchOp{Op: OpRead, ID: BlockID(rng.Intn(300))}
			} else {
				ops[i] = BatchOp{Op: OpWrite, ID: BlockID(rng.Intn(300)), Data: []byte{byte(round), byte(i)}}
			}
		}
		if _, err := cli.AccessBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	stats := cli.Stats()
	if stats.MaxStash > 8*stats.Depth {
		t.Fatalf("batched stash grew to %d (depth %d)", stats.MaxStash, stats.Depth)
	}
}

// Property: mixed batched and sequential ops behave exactly like a map.
func TestQuickBatchMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		srv, err := NewMemServer(128)
		if err != nil {
			return false
		}
		cli, err := NewClient(srv, testKey())
		if err != nil {
			return false
		}
		ref := map[BlockID][]byte{}
		for round := 0; round < 25; round++ {
			if rng.Intn(3) == 0 {
				// Interleave a sequential op.
				id := BlockID(rng.Intn(40))
				v := []byte(fmt.Sprintf("s%d", rng.Intn(1000)))
				if err := cli.Write(id, v); err != nil {
					return false
				}
				ref[id] = v
				continue
			}
			ops := make([]BatchOp, 2+rng.Intn(7))
			want := make([][]byte, len(ops))
			for i := range ops {
				id := BlockID(rng.Intn(40))
				// The batch semantics return the PRIOR content; compute
				// the expectation against the evolving reference, which
				// earlier ops in the same batch may have written.
				want[i] = ref[id]
				if rng.Intn(2) == 0 {
					v := []byte(fmt.Sprintf("b%d", rng.Intn(1000)))
					ops[i] = BatchOp{Op: OpWrite, ID: id, Data: v}
					ref[id] = v
				} else {
					ops[i] = BatchOp{Op: OpRead, ID: id}
				}
			}
			got, err := cli.AccessBatch(ops)
			if err != nil {
				return false
			}
			for i := range ops {
				if want[i] == nil {
					if got[i] != nil {
						return false
					}
					continue
				}
				if got[i] == nil || !bytes.Equal(got[i][:len(want[i])], want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func BenchmarkORAMAccess(b *testing.B) {
	cli, _ := newTestORAM(b, 4096)
	payload := make([]byte, BlockSize)
	for i := 0; i < 512; i++ {
		if err := cli.Write(BlockID(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Read(BlockID(i % 512)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkORAMWrite(b *testing.B) {
	cli, _ := newTestORAM(b, 4096)
	payload := make([]byte, BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := cli.Write(BlockID(i%1024), payload); err != nil {
			b.Fatal(err)
		}
	}
}
