package oram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// fileMagic identifies an ORAM bucket file (version 1).
var fileMagic = [8]byte{'H', 'T', 'O', 'R', 'A', 'M', '1', 0}

// fileHeaderSize is the on-disk header: magic (8) + depth u32 +
// reserved u32.
const fileHeaderSize = 16

// fileSlotSize is one node's fixed on-disk record: ciphertext length
// u32 + cipherBufCap payload bytes. Fixed-size slots keep node offsets
// a pure function of the heap index, so a write touches exactly one
// record and a torn write corrupts at most the buckets it covered —
// which the AES-GCM open then rejects as ErrTampered.
const fileSlotSize = 4 + cipherBufCap

// FileServer is a disk-backed Server: the same untrusted bucket store
// as MemServer, persisted as fixed-size records in a single file. It
// shares MemServer's adversary surface (observer tap, TamperBucket)
// and concurrency contract (safe for concurrent use).
//
// Writes go through the OS page cache; Sync flushes to stable storage.
// The client's checkpointing (persist.go) calls Sync before publishing
// a checkpoint manifest, so a crash never leaves a checkpoint pointing
// at bucket state that predates it.
type FileServer struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	depth  int
	leaves uint64
	seq    uint64
	// idxScratch/recScratch are per-call scratch; guarded by mu.
	idxScratch []uint64
	recScratch [fileSlotSize]byte
	observer   func(AccessEvent)
}

var _ Server = (*FileServer)(nil)

// OpenFileServer opens (or creates) a disk-backed bucket store at path
// sized for the given block capacity. Reopening an existing file
// validates the magic and reuses the stored geometry; a capacity
// implying a different tree depth is rejected, so a recovered store
// always serves the exact tree it was built as.
func OpenFileServer(path string, capacity uint64) (*FileServer, error) {
	if capacity < 2 {
		return nil, ErrCapacity
	}
	depth := treeDepth(capacity)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("oram: open bucket file: %w", err)
	}
	s := &FileServer{
		f:          f,
		path:       path,
		depth:      depth,
		leaves:     uint64(1) << (depth - 1),
		idxScratch: make([]uint64, depth),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("oram: stat bucket file: %w", err)
	}
	if st.Size() == 0 {
		var hdr [fileHeaderSize]byte
		copy(hdr[:8], fileMagic[:])
		binary.BigEndian.PutUint32(hdr[8:], uint32(depth))
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("oram: write bucket header: %w", err)
		}
		return s, nil
	}
	var hdr [fileHeaderSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fileHeaderSize), hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("oram: read bucket header: %w", err)
	}
	if [8]byte(hdr[:8]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad bucket file magic", ErrTampered)
	}
	if got := int(binary.BigEndian.Uint32(hdr[8:])); got != depth {
		f.Close()
		return nil, fmt.Errorf("%w: bucket file depth %d, capacity implies %d", ErrCapacity, got, depth)
	}
	return s, nil
}

// nodeOffset returns the file offset of a 1-indexed heap node's record.
func nodeOffset(node uint64) int64 {
	return fileHeaderSize + int64(node-1)*fileSlotSize
}

// Depth implements Server.
func (s *FileServer) Depth() int { return s.depth }

// Leaves implements Server.
func (s *FileServer) Leaves() uint64 { return s.leaves }

// SetObserver installs the adversary's tap on the access sequence.
func (s *FileServer) SetObserver(fn func(AccessEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// readNodeLocked loads one node's ciphertext into a pooled buffer
// (nil for a never-written node).
func (s *FileServer) readNodeLocked(node uint64) ([]byte, error) {
	var lenBuf [4]byte
	n, err := s.f.ReadAt(lenBuf[:], nodeOffset(node))
	if err == io.EOF && n == 0 {
		return nil, nil // past EOF: never written
	}
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("oram: read bucket %d: %w", node, err)
	}
	if n < 4 {
		return nil, nil
	}
	ln := binary.BigEndian.Uint32(lenBuf[:])
	if ln == 0 {
		return nil, nil
	}
	if ln > cipherBufCap {
		// A length no seal could have produced: on-disk corruption.
		return nil, fmt.Errorf("%w: bucket %d record length %d", ErrTampered, node, ln)
	}
	buf := getCipherBuf()[:ln]
	if _, err := s.f.ReadAt(buf, nodeOffset(node)+4); err != nil {
		putCipherBuf(buf)
		if err == io.EOF {
			return nil, fmt.Errorf("%w: bucket %d truncated", ErrTampered, node)
		}
		return nil, fmt.Errorf("oram: read bucket %d: %w", node, err)
	}
	return buf, nil
}

// writeNodeLocked stores one node's ciphertext as a single WriteAt of
// its fixed-size record.
func (s *FileServer) writeNodeLocked(node uint64, ct []byte) error {
	if len(ct) > cipherBufCap {
		return fmt.Errorf("%w: bucket %d ciphertext %d bytes", ErrBadBucket, node, len(ct))
	}
	rec := s.recScratch[:4+len(ct)]
	binary.BigEndian.PutUint32(rec, uint32(len(ct)))
	copy(rec[4:], ct)
	if _, err := s.f.WriteAt(rec, nodeOffset(node)); err != nil {
		return fmt.Errorf("oram: write bucket %d: %w", node, err)
	}
	return nil
}

// readPathLocked fills out (length depth) with the path's buckets.
func (s *FileServer) readPathLocked(leaf uint64, out [][]byte) error {
	if leaf >= s.leaves {
		return fmt.Errorf("oram: leaf %d out of range (%d leaves)", leaf, s.leaves)
	}
	s.seq++
	if s.observer != nil {
		s.observer(AccessEvent{Seq: s.seq, Leaf: leaf})
	}
	pathIndicesInto(leaf, s.depth, s.idxScratch)
	for i, node := range s.idxScratch {
		ct, err := s.readNodeLocked(node)
		if err != nil {
			return err
		}
		out[i] = ct
	}
	return nil
}

func (s *FileServer) writePathLocked(leaf uint64, buckets [][]byte) error {
	if leaf >= s.leaves {
		return fmt.Errorf("oram: leaf %d out of range (%d leaves)", leaf, s.leaves)
	}
	if len(buckets) != s.depth {
		return fmt.Errorf("oram: WritePath got %d buckets, want %d", len(buckets), s.depth)
	}
	s.seq++
	if s.observer != nil {
		s.observer(AccessEvent{Seq: s.seq, Leaf: leaf, Write: true})
	}
	pathIndicesInto(leaf, s.depth, s.idxScratch)
	for i, node := range s.idxScratch {
		if err := s.writeNodeLocked(node, buckets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadPath implements Server.
func (s *FileServer) ReadPath(leaf uint64) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, s.depth)
	if err := s.readPathLocked(leaf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WritePath implements Server.
func (s *FileServer) WritePath(leaf uint64, buckets [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writePathLocked(leaf, buckets)
}

// ReadPaths implements Server.
func (s *FileServer) ReadPaths(leaves []uint64) ([][][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][][]byte, len(leaves))
	flat := make([][]byte, len(leaves)*s.depth)
	for i, leaf := range leaves {
		path := flat[i*s.depth : (i+1)*s.depth]
		if err := s.readPathLocked(leaf, path); err != nil {
			return nil, err
		}
		out[i] = path
	}
	return out, nil
}

// WritePaths implements Server.
func (s *FileServer) WritePaths(leaves []uint64, paths [][][]byte) error {
	if len(paths) != len(leaves) {
		return fmt.Errorf("oram: WritePaths got %d paths for %d leaves", len(paths), len(leaves))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, leaf := range leaves {
		if err := s.writePathLocked(leaf, paths[i]); err != nil {
			return err
		}
	}
	return nil
}

// TamperBucket flips a byte in a stored bucket (test hook modelling
// the paper's A6 adversary against the durable store).
func (s *FileServer) TamperBucket(leaf uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, node := range pathIndices(leaf, s.depth) {
		ct, err := s.readNodeLocked(node)
		if err != nil || len(ct) == 0 {
			continue
		}
		ct[len(ct)-1] ^= 0x01
		//hardtape:faulterr-ok test-only corruption injector; a failed write just leaves the bucket intact
		_ = s.writeNodeLocked(node, ct)
		putCipherBuf(ct)
		return
	}
}

// Sync flushes buffered bucket writes to stable storage.
//
//hardtape:locksafe-ok fsync must be ordered against in-flight bucket writes; s.mu exists to serialize file access
func (s *FileServer) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("oram: sync bucket file: %w", err)
	}
	return nil
}

// Close flushes and closes the bucket file.
//
//hardtape:locksafe-ok final fsync+close must exclude concurrent path ops; s.mu exists to serialize file access
func (s *FileServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.f.Sync()
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return fmt.Errorf("oram: close bucket file: %w", err)
	}
	return nil
}
