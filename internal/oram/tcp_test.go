package oram

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
)

// startTCP spins up a MemServer behind the TCP transport and returns a
// connected RemoteServer.
func startTCP(t *testing.T, capacity uint64) (*RemoteServer, *MemServer) {
	t.Helper()
	inner, err := NewMemServer(capacity)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(inner, l)
	t.Cleanup(func() { _ = srv.Close() })

	remote, err := DialServer(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = remote.Close() })
	return remote, inner
}

func TestTCPGeometry(t *testing.T) {
	remote, inner := startTCP(t, 256)
	if remote.Depth() != inner.Depth() || remote.Leaves() != inner.Leaves() {
		t.Fatalf("geometry: remote %d/%d vs inner %d/%d",
			remote.Depth(), remote.Leaves(), inner.Depth(), inner.Leaves())
	}
}

func TestTCPClientRoundTrip(t *testing.T) {
	remote, _ := startTCP(t, 256)
	cli, err := NewClient(remote, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := cli.Write(BlockID(i), []byte(fmt.Sprintf("remote-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		got, err := cli.Read(BlockID(i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("remote-%d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("block %d corrupted over TCP", i)
		}
	}
}

func TestTCPOutOfRangeLeafSurfacesError(t *testing.T) {
	remote, _ := startTCP(t, 64)
	if _, err := remote.ReadPath(remote.Leaves() + 5); !errors.Is(err, ErrWire) {
		t.Fatalf("out-of-range leaf: %v", err)
	}
	// The connection stays usable after a remote error.
	if _, err := remote.ReadPath(0); err != nil {
		t.Fatalf("connection poisoned after error: %v", err)
	}
}

func TestTCPEmptyBuckets(t *testing.T) {
	// A fresh tree serves nil buckets; they must cross the wire as
	// empties, not crash.
	remote, _ := startTCP(t, 64)
	buckets, err := remote.ReadPath(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != remote.Depth() {
		t.Fatalf("bucket count %d != depth %d", len(buckets), remote.Depth())
	}
	for _, b := range buckets {
		if len(b) != 0 {
			t.Fatal("fresh tree should serve empty buckets")
		}
	}
}

func TestTCPWritePathPersists(t *testing.T) {
	remote, inner := startTCP(t, 64)
	payload := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 200),
	}
	// Pad to depth.
	for len(payload) < remote.Depth() {
		payload = append(payload, []byte{9})
	}
	if err := remote.WritePath(1, payload); err != nil {
		t.Fatal(err)
	}
	// Both the remote view and the inner server agree.
	back, err := remote.ReadPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[0], payload[0]) || !bytes.Equal(back[1], payload[1]) {
		t.Fatal("write-path round trip mismatch")
	}
	innerView, err := inner.ReadPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(innerView[0], payload[0]) {
		t.Fatal("inner server missed the write")
	}
}

func TestTCPMultipleClients(t *testing.T) {
	// Path ORAM is stateless server-side: a second connection sees the
	// first one's writes.
	remote1, _ := startTCP(t, 128)
	cli1, err := NewClient(remote1, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli1.Write(7, []byte("shared")); err != nil {
		t.Fatal(err)
	}

	remote2, err := DialServer(remote1.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()
	cli2, err := NewClient(remote2, testKey())
	if err != nil {
		t.Fatal(err)
	}
	// cli2 has its own (empty) position map: it cannot find block 7,
	// but its own writes work over the same tree.
	if err := cli2.Write(900, []byte("second client")); err != nil {
		t.Fatal(err)
	}
	got, err := cli2.Read(900)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:13]) != "second client" {
		t.Fatal("second client round trip failed")
	}
}
