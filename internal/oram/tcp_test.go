package oram

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startTCP spins up a MemServer behind the TCP transport and returns a
// connected RemoteServer.
func startTCP(t testing.TB, capacity uint64) (*RemoteServer, *MemServer) {
	t.Helper()
	inner, err := NewMemServer(capacity)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(inner, l)
	t.Cleanup(func() { _ = srv.Close() })

	remote, err := DialServer(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = remote.Close() })
	return remote, inner
}

func TestTCPGeometry(t *testing.T) {
	remote, inner := startTCP(t, 256)
	if remote.Depth() != inner.Depth() || remote.Leaves() != inner.Leaves() {
		t.Fatalf("geometry: remote %d/%d vs inner %d/%d",
			remote.Depth(), remote.Leaves(), inner.Depth(), inner.Leaves())
	}
}

func TestTCPClientRoundTrip(t *testing.T) {
	remote, _ := startTCP(t, 256)
	cli, err := NewClient(remote, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := cli.Write(BlockID(i), []byte(fmt.Sprintf("remote-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		got, err := cli.Read(BlockID(i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("remote-%d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("block %d corrupted over TCP", i)
		}
	}
}

func TestTCPOutOfRangeLeafSurfacesError(t *testing.T) {
	remote, _ := startTCP(t, 64)
	if _, err := remote.ReadPath(remote.Leaves() + 5); !errors.Is(err, ErrWire) {
		t.Fatalf("out-of-range leaf: %v", err)
	}
	// The connection stays usable after a remote error.
	if _, err := remote.ReadPath(0); err != nil {
		t.Fatalf("connection poisoned after error: %v", err)
	}
}

func TestTCPEmptyBuckets(t *testing.T) {
	// A fresh tree serves nil buckets; they must cross the wire as
	// empties, not crash.
	remote, _ := startTCP(t, 64)
	buckets, err := remote.ReadPath(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != remote.Depth() {
		t.Fatalf("bucket count %d != depth %d", len(buckets), remote.Depth())
	}
	for _, b := range buckets {
		if len(b) != 0 {
			t.Fatal("fresh tree should serve empty buckets")
		}
	}
}

func TestTCPWritePathPersists(t *testing.T) {
	remote, inner := startTCP(t, 64)
	payload := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 200),
	}
	// Pad to depth.
	for len(payload) < remote.Depth() {
		payload = append(payload, []byte{9})
	}
	if err := remote.WritePath(1, payload); err != nil {
		t.Fatal(err)
	}
	// Both the remote view and the inner server agree.
	back, err := remote.ReadPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[0], payload[0]) || !bytes.Equal(back[1], payload[1]) {
		t.Fatal("write-path round trip mismatch")
	}
	innerView, err := inner.ReadPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(innerView[0], payload[0]) {
		t.Fatal("inner server missed the write")
	}
}

func TestTCPMultipleClients(t *testing.T) {
	// Path ORAM is stateless server-side: a second connection sees the
	// first one's writes.
	remote1, _ := startTCP(t, 128)
	cli1, err := NewClient(remote1, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli1.Write(7, []byte("shared")); err != nil {
		t.Fatal(err)
	}

	remote2, err := DialServer(remote1.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()
	cli2, err := NewClient(remote2, testKey())
	if err != nil {
		t.Fatal(err)
	}
	// cli2 has its own (empty) position map: it cannot find block 7,
	// but its own writes work over the same tree.
	if err := cli2.Write(900, []byte("second client")); err != nil {
		t.Fatal(err)
	}
	got, err := cli2.Read(900)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:13]) != "second client" {
		t.Fatal("second client round trip failed")
	}
}

func TestTCPBatchRoundTrip(t *testing.T) {
	remote, inner := startTCP(t, 128)
	leaves := []uint64{0, 3, 3, remote.Leaves() - 1}
	paths := make([][][]byte, len(leaves))
	for i := range leaves {
		path := make([][]byte, remote.Depth())
		for l := range path {
			path[l] = bytes.Repeat([]byte{byte(i*16 + l)}, 64)
		}
		paths[i] = path
	}
	if err := remote.WritePaths(leaves, paths); err != nil {
		t.Fatal(err)
	}
	back, err := remote.ReadPaths(leaves)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(leaves) {
		t.Fatalf("got %d paths, want %d", len(back), len(leaves))
	}
	// The duplicate leaf (3) was written twice; the later write wins on
	// the shared buckets, and every returned path matches the inner
	// server's view.
	for i, leaf := range leaves {
		innerView, err := inner.ReadPath(leaf)
		if err != nil {
			t.Fatal(err)
		}
		for l := range innerView {
			if !bytes.Equal(back[i][l], innerView[l]) {
				t.Fatalf("path %d level %d: wire view diverges from inner server", i, l)
			}
		}
	}
	// Validation: mismatched lengths and oversized batches error cleanly.
	if err := remote.WritePaths([]uint64{0, 1}, paths[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	big := make([]uint64, maxWirePaths+1)
	if _, err := remote.ReadPaths(big); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// The connection survives client-side validation failures.
	if _, err := remote.ReadPaths([]uint64{0}); err != nil {
		t.Fatalf("connection unusable after validation error: %v", err)
	}
}

// TestTCPPipelinedConcurrent exercises the pipelined wire protocol
// under -race: many goroutines share ONE RemoteServer connection (the
// in-flight request map and write coalescing must hold up), while
// additional independent connections hammer the same TCPServer.
// ORAM *clients* are single-goroutine by contract, so this drives the
// raw transport ops directly.
func TestTCPPipelinedConcurrent(t *testing.T) {
	remote, _ := startTCP(t, 256)
	addr := remote.conn.RemoteAddr().String()

	const goroutines = 8
	const rounds = 30
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*2)

	// Half the goroutines share the first connection...
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				leaf := uint64((g*rounds + i) % int(remote.Leaves()))
				path := make([][]byte, remote.Depth())
				for l := range path {
					path[l] = []byte{byte(g), byte(i), byte(l)}
				}
				if err := remote.WritePath(leaf, path); err != nil {
					errCh <- fmt.Errorf("shared conn write g%d i%d: %w", g, i, err)
					return
				}
				back, err := remote.ReadPath(leaf)
				if err != nil {
					errCh <- fmt.Errorf("shared conn read g%d i%d: %w", g, i, err)
					return
				}
				if len(back) != remote.Depth() {
					errCh <- fmt.Errorf("shared conn g%d i%d: short path", g, i)
					return
				}
			}
		}(g)
	}
	// ...and the rest each dial their own.
	for g := 0; g < goroutines/2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own, err := DialServer(addr)
			if err != nil {
				errCh <- fmt.Errorf("dial %d: %w", g, err)
				return
			}
			defer own.Close()
			for i := 0; i < rounds; i++ {
				if _, err := own.ReadPaths([]uint64{0, uint64(i % int(own.Leaves()))}); err != nil {
					errCh <- fmt.Errorf("own conn %d batch %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// BenchmarkTCPPath measures one raw path round trip over the wire —
// the unit the batch transport amortizes.
func BenchmarkTCPPath(b *testing.B) {
	remote, _ := startTCP(b, 1024)
	path := make([][]byte, remote.Depth())
	for l := range path {
		path[l] = bytes.Repeat([]byte{byte(l)}, bucketPlain)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := uint64(i) % remote.Leaves()
		if err := remote.WritePath(leaf, path); err != nil {
			b.Fatal(err)
		}
		if _, err := remote.ReadPath(leaf); err != nil {
			b.Fatal(err)
		}
	}
}

// linkServer wraps a Server with a modeled service latency: a fixed
// per-REQUEST round trip (the off-chip link between the Hypervisor and
// the SP's ORAM server — the paper measures 2 ms over Ethernet; the
// benchmark requests 100 µs so loopback TCP pays a real but smaller
// link cost) plus a per-PATH serial processing charge modeling the
// server's bucket-store work: each path query is depth × Z random
// ~1 KB bucket I/Os against a disk-backed store (oram.FileServer's
// deployment shape) plus index logic, SSD-class. Server processing is
// serial per path WITHIN a server — the very §VI-D bottleneck sharding
// attacks — so a K-shard fan-out overlaps K of these queues.
type linkServer struct {
	Server
	rtt     time.Duration
	perPath time.Duration
}

func (l *linkServer) ReadPath(leaf uint64) ([][]byte, error) {
	time.Sleep(l.rtt + l.perPath)
	return l.Server.ReadPath(leaf)
}

func (l *linkServer) WritePath(leaf uint64, buckets [][]byte) error {
	time.Sleep(l.rtt + l.perPath)
	return l.Server.WritePath(leaf, buckets)
}

func (l *linkServer) ReadPaths(leaves []uint64) ([][][]byte, error) {
	time.Sleep(l.rtt + time.Duration(len(leaves))*l.perPath)
	return l.Server.ReadPaths(leaves)
}

func (l *linkServer) WritePaths(leaves []uint64, paths [][][]byte) error {
	time.Sleep(l.rtt + time.Duration(len(leaves))*l.perPath)
	return l.Server.WritePaths(leaves, paths)
}

// startLinkTCP spins up one TCP-served shard behind a linkServer and
// returns the dialed transport.
func startLinkTCP(b *testing.B, capacity uint64, rtt, perPath time.Duration) *RemoteServer {
	b.Helper()
	inner, err := NewMemServer(capacity)
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := ServeTCP(&linkServer{Server: inner, rtt: rtt, perPath: perPath}, l)
	b.Cleanup(func() { _ = srv.Close() })
	remote, err := DialServer(srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = remote.Close() })
	return remote
}

// balancedIDs returns `blocks` block ids interleaved so that every run
// of `batch` consecutive ids touches each of the `shards` shards
// exactly batch/shards times (batch and blocks must divide evenly).
// The benchmark measures fan-out SCALING, so it feeds a shard-balanced
// load: with only 32 ids per round, the hashed assignment's binomial
// imbalance (E[max] ≈ 11 of 32 at K=4) would gate every round on the
// luckiest shard and measure hash variance, not the fan-out. Real
// pager batches are larger and amortize that variance; the benchtab
// -oram sweep covers the hashed/unbalanced case.
func balancedIDs(blocks, shards int) []BlockID {
	pools := make([][]BlockID, shards)
	per := blocks / shards
	filled := 0
	for id := 0; filled < blocks; id++ {
		sh := shardOf(BlockID(id), shards)
		if len(pools[sh]) < per {
			pools[sh] = append(pools[sh], BlockID(id))
			filled++
		}
	}
	ids := make([]BlockID, blocks)
	for i := range ids {
		ids[i] = pools[i%shards][i/shards]
	}
	return ids
}

// BenchmarkORAMBatch measures one batched ReadMany round across shard
// counts 1/2/4/8, each shard a TCP-served tree behind the modeled link
// (see linkServer). Aggregate capacity is constant — a 4-shard point is
// four quarter-size trees — so the comparison isolates the fan-out.
// Each sub-benchmark reports "scaling-x": single-shard ns/op divided by
// its own, i.e. the read-throughput multiple over the unsharded
// baseline. The serial per-path server queue dominates a batch round,
// and sharding divides that queue K ways, so shards-4 is expected to
// clear 3x (on-chip client crypto stays serial and caps the gain below
// the ideal 4x).
func BenchmarkORAMBatch(b *testing.B) {
	const (
		batch    = 32
		totalCap = 4096
		blocks   = 128
		linkRTT  = 100 * time.Microsecond
		// perPath: one path query against a disk-backed bucket store is
		// depth × Z ≈ 40-48 random ~1 KB bucket I/Os plus index logic at
		// commodity-SSD latency — about 2 ms of serial server work.
		perPath = 2 * time.Millisecond
	)
	var baselineNs float64 // shards-1 ns/op, set before the scaled runs
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			perShard := uint64((totalCap + shards - 1) / shards)
			servers := make([]Server, shards)
			for i := range servers {
				servers[i] = startLinkTCP(b, perShard, linkRTT, perPath)
			}
			cli, err := NewShardedClient(servers, testKey())
			if err != nil {
				b.Fatal(err)
			}
			ids := balancedIDs(blocks, shards)
			ops := make([]BatchOp, 0, batch)
			for lo := 0; lo < blocks; lo += batch {
				ops = ops[:0]
				for i := lo; i < lo+batch; i++ {
					ops = append(ops, BatchOp{Op: OpWrite, ID: ids[i], Data: []byte{byte(i)}})
				}
				if _, err := cli.AccessBatch(ops); err != nil {
					b.Fatal(err)
				}
			}
			reads := make([]BlockID, batch)
			b.ReportAllocs()
			b.ResetTimer()
			next := 0
			for i := 0; i < b.N; i++ {
				for j := range reads {
					reads[j] = ids[next%blocks]
					next++
				}
				if _, err := cli.ReadMany(reads); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if shards == 1 {
				baselineNs = nsPerOp
			} else if baselineNs > 0 {
				b.ReportMetric(baselineNs/nsPerOp, "scaling-x")
			}
		})
	}
}
