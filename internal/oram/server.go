package oram

import (
	"fmt"
	"sync"
)

// Server is the untrusted bucket store run by the service provider. It
// sees only encrypted buckets and the sequence of path indices — the
// exact adversary view the paper's obliviousness argument is about.
type Server interface {
	// ReadPath returns the encrypted buckets along the path to leaf,
	// root first.
	ReadPath(leaf uint64) ([][]byte, error)
	// WritePath stores the encrypted buckets along the path to leaf,
	// root first.
	WritePath(leaf uint64, buckets [][]byte) error
	// Depth returns the tree depth (levels).
	Depth() int
	// Leaves returns the number of leaves.
	Leaves() uint64
}

// AccessEvent is what the adversary observes per path operation.
type AccessEvent struct {
	// Seq is the operation sequence number.
	Seq uint64
	// Leaf is the observed path.
	Leaf uint64
	// Write distinguishes path reads from path writes (every logical
	// access produces one of each).
	Write bool
}

// MemServer is an in-memory Server with an adversary-observable access
// log. It is safe for concurrent use by multiple clients (Path ORAM is
// stateless server-side, paper §II-C).
type MemServer struct {
	mu      sync.Mutex
	depth   int
	leaves  uint64
	buckets [][]byte // heap layout, 1-indexed (index 0 unused)
	seq     uint64
	// observer receives the adversary-visible trace; may be nil.
	observer func(AccessEvent)
}

var _ Server = (*MemServer)(nil)

// NewMemServer creates a server sized for the given block capacity.
func NewMemServer(capacity uint64) (*MemServer, error) {
	if capacity < 2 {
		return nil, ErrCapacity
	}
	depth := treeDepth(capacity)
	nodes := (uint64(1) << depth) // 1-indexed heap with 2^depth-1 nodes
	return &MemServer{
		depth:   depth,
		leaves:  uint64(1) << (depth - 1),
		buckets: make([][]byte, nodes),
	}, nil
}

// SetObserver installs the adversary's tap on the access sequence.
func (s *MemServer) SetObserver(fn func(AccessEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// Depth implements Server.
func (s *MemServer) Depth() int { return s.depth }

// Leaves implements Server.
func (s *MemServer) Leaves() uint64 { return s.leaves }

// ReadPath implements Server.
func (s *MemServer) ReadPath(leaf uint64) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if leaf >= s.leaves {
		return nil, fmt.Errorf("oram: leaf %d out of range (%d leaves)", leaf, s.leaves)
	}
	s.seq++
	if s.observer != nil {
		s.observer(AccessEvent{Seq: s.seq, Leaf: leaf})
	}
	idx := pathIndices(leaf, s.depth)
	out := make([][]byte, len(idx))
	for i, node := range idx {
		if s.buckets[node] != nil {
			cp := make([]byte, len(s.buckets[node]))
			copy(cp, s.buckets[node])
			out[i] = cp
		}
	}
	return out, nil
}

// WritePath implements Server.
func (s *MemServer) WritePath(leaf uint64, buckets [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if leaf >= s.leaves {
		return fmt.Errorf("oram: leaf %d out of range (%d leaves)", leaf, s.leaves)
	}
	idx := pathIndices(leaf, s.depth)
	if len(buckets) != len(idx) {
		return fmt.Errorf("oram: WritePath got %d buckets, want %d", len(buckets), len(idx))
	}
	s.seq++
	if s.observer != nil {
		s.observer(AccessEvent{Seq: s.seq, Leaf: leaf, Write: true})
	}
	for i, node := range idx {
		cp := make([]byte, len(buckets[i]))
		copy(cp, buckets[i])
		s.buckets[node] = cp
	}
	return nil
}

// TamperBucket flips a byte in a stored bucket (test hook modelling the
// paper's A6 adversary).
func (s *MemServer) TamperBucket(leaf uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, node := range pathIndices(leaf, s.depth) {
		if len(s.buckets[node]) > 0 {
			s.buckets[node][len(s.buckets[node])-1] ^= 0x01
			return
		}
	}
}

// StoredBytes reports the server's total ciphertext footprint.
func (s *MemServer) StoredBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, b := range s.buckets {
		total += uint64(len(b))
	}
	return total
}
