package oram

import (
	"fmt"
	"sync"
)

// Server is the untrusted bucket store run by the service provider. It
// sees only encrypted buckets and the sequence of path indices — the
// exact adversary view the paper's obliviousness argument is about.
type Server interface {
	// ReadPath returns the encrypted buckets along the path to leaf,
	// root first.
	ReadPath(leaf uint64) ([][]byte, error)
	// WritePath stores the encrypted buckets along the path to leaf,
	// root first.
	WritePath(leaf uint64, buckets [][]byte) error
	// ReadPaths returns the encrypted buckets along each leaf's path in
	// one server round trip (batched transports pay one link RTT for
	// the whole set). The result is aligned with leaves.
	ReadPaths(leaves []uint64) ([][][]byte, error)
	// WritePaths stores the encrypted buckets along each leaf's path in
	// one server round trip. Buckets shared between paths carry
	// identical ciphertexts, so write order within the batch is
	// immaterial.
	WritePaths(leaves []uint64, paths [][][]byte) error
	// Depth returns the tree depth (levels).
	Depth() int
	// Leaves returns the number of leaves.
	Leaves() uint64
}

// AccessEvent is what the adversary observes per path operation.
type AccessEvent struct {
	// Seq is the operation sequence number.
	Seq uint64
	// Leaf is the observed path.
	Leaf uint64
	// Write distinguishes path reads from path writes (every logical
	// access produces one of each).
	Write bool
}

// MemServer is an in-memory Server with an adversary-observable access
// log. It is safe for concurrent use by multiple clients (Path ORAM is
// stateless server-side, paper §II-C).
type MemServer struct {
	mu      sync.Mutex
	depth   int
	leaves  uint64
	buckets [][]byte // heap layout, 1-indexed (index 0 unused)
	seq     uint64
	// idxScratch holds one path's node indices; guarded by mu.
	idxScratch []uint64
	// observer receives the adversary-visible trace; may be nil.
	observer func(AccessEvent)
}

var _ Server = (*MemServer)(nil)

// NewMemServer creates a server sized for the given block capacity.
func NewMemServer(capacity uint64) (*MemServer, error) {
	if capacity < 2 {
		return nil, ErrCapacity
	}
	depth := treeDepth(capacity)
	nodes := (uint64(1) << depth) // 1-indexed heap with 2^depth-1 nodes
	return &MemServer{
		depth:      depth,
		leaves:     uint64(1) << (depth - 1),
		buckets:    make([][]byte, nodes),
		idxScratch: make([]uint64, depth),
	}, nil
}

// SetObserver installs the adversary's tap on the access sequence.
func (s *MemServer) SetObserver(fn func(AccessEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// Depth implements Server.
func (s *MemServer) Depth() int { return s.depth }

// Leaves implements Server.
func (s *MemServer) Leaves() uint64 { return s.leaves }

// ReadPath implements Server.
func (s *MemServer) ReadPath(leaf uint64) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, s.depth)
	if err := s.readPathLocked(leaf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// readPathLocked copies the path's buckets into out (length depth).
func (s *MemServer) readPathLocked(leaf uint64, out [][]byte) error {
	if leaf >= s.leaves {
		return fmt.Errorf("oram: leaf %d out of range (%d leaves)", leaf, s.leaves)
	}
	s.seq++
	if s.observer != nil {
		s.observer(AccessEvent{Seq: s.seq, Leaf: leaf})
	}
	pathIndicesInto(leaf, s.depth, s.idxScratch)
	for i, node := range s.idxScratch {
		out[i] = nil
		if b := s.buckets[node]; b != nil {
			// Copies are caller-owned; sealed buckets fit the shared
			// cipher pool, so consumers can recycle them after decoding.
			var cp []byte
			if len(b) <= cipherBufCap {
				cp = getCipherBuf()[:len(b)]
			} else {
				cp = make([]byte, len(b))
			}
			copy(cp, b)
			out[i] = cp
		}
	}
	return nil
}

// WritePath implements Server.
func (s *MemServer) WritePath(leaf uint64, buckets [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writePathLocked(leaf, buckets)
}

func (s *MemServer) writePathLocked(leaf uint64, buckets [][]byte) error {
	if leaf >= s.leaves {
		return fmt.Errorf("oram: leaf %d out of range (%d leaves)", leaf, s.leaves)
	}
	if len(buckets) != s.depth {
		return fmt.Errorf("oram: WritePath got %d buckets, want %d", len(buckets), s.depth)
	}
	s.seq++
	if s.observer != nil {
		s.observer(AccessEvent{Seq: s.seq, Leaf: leaf, Write: true})
	}
	pathIndicesInto(leaf, s.depth, s.idxScratch)
	for i, node := range s.idxScratch {
		// Reuse the stored slice's capacity: bucket ciphertexts are a
		// stable size, so steady-state writes allocate nothing.
		s.buckets[node] = append(s.buckets[node][:0], buckets[i]...)
	}
	return nil
}

// ReadPaths implements Server. The batch is served under one lock
// acquisition; the adversary trace still records one event per path.
// All per-path bucket lists share one flat backing allocation.
func (s *MemServer) ReadPaths(leaves []uint64) ([][][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][][]byte, len(leaves))
	flat := make([][]byte, len(leaves)*s.depth)
	for i, leaf := range leaves {
		path := flat[i*s.depth : (i+1)*s.depth]
		if err := s.readPathLocked(leaf, path); err != nil {
			return nil, err
		}
		out[i] = path
	}
	return out, nil
}

// WritePaths implements Server.
func (s *MemServer) WritePaths(leaves []uint64, paths [][][]byte) error {
	if len(paths) != len(leaves) {
		return fmt.Errorf("oram: WritePaths got %d paths for %d leaves", len(paths), len(leaves))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, leaf := range leaves {
		if err := s.writePathLocked(leaf, paths[i]); err != nil {
			return err
		}
	}
	return nil
}

// TamperBucket flips a byte in a stored bucket (test hook modelling the
// paper's A6 adversary).
func (s *MemServer) TamperBucket(leaf uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, node := range pathIndices(leaf, s.depth) {
		if len(s.buckets[node]) > 0 {
			s.buckets[node][len(s.buckets[node])-1] ^= 0x01
			return
		}
	}
}

// StoredBytes reports the server's total ciphertext footprint.
func (s *MemServer) StoredBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, b := range s.buckets {
		total += uint64(len(b))
	}
	return total
}
