package oram

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hardtape/internal/simclock"
)

// newShardedMem builds a K-shard client over fresh MemServers (aggregate
// capacity split evenly) and returns the servers for observation.
func newShardedMem(t testing.TB, shards int, totalCap uint64) (*ShardedClient, []*MemServer) {
	t.Helper()
	mems := make([]*MemServer, shards)
	servers := make([]Server, shards)
	perShard := (totalCap + uint64(shards) - 1) / uint64(shards)
	for i := range servers {
		m, err := NewMemServer(perShard)
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
		servers[i] = m
	}
	cli, err := NewShardedClient(servers, testKey())
	if err != nil {
		t.Fatal(err)
	}
	return cli, mems
}

func TestShardOfStableAndBalanced(t *testing.T) {
	// Stability: the assignment is a pure function of the id.
	for id := BlockID(0); id < 64; id++ {
		if shardOf(id, 4) != shardOf(id, 4) {
			t.Fatal("shardOf is not deterministic")
		}
	}
	// Balance: a splitmix64-hashed id space spreads close to evenly.
	for _, k := range []int{2, 4, 8} {
		counts := make([]int, k)
		const n = 1 << 14
		for id := 0; id < n; id++ {
			counts[shardOf(BlockID(id), k)]++
		}
		want := n / k
		for sh, c := range counts {
			if c < want*8/10 || c > want*12/10 {
				t.Fatalf("%d shards: shard %d holds %d of %d ids (want ≈%d)", k, sh, c, n, want)
			}
		}
	}
}

func TestShardedKeyDomainSeparation(t *testing.T) {
	a := deriveShardKey(testKey(), "hardtape-oram-shard-0")
	b := deriveShardKey(testKey(), "hardtape-oram-shard-1")
	if bytes.Equal(a, b) {
		t.Fatal("shard keys are not domain-separated")
	}
	if bytes.Equal(a, testKey()) {
		t.Fatal("shard key equals the master key")
	}
}

// TestShardedRoundTrip drives a mixed batched workload through 1/2/4/8
// shards and checks every configuration against a plain map — the
// partition must be invisible to the consumer.
func TestShardedRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			cli, _ := newShardedMem(t, shards, 512)
			want := make(map[BlockID][]byte)
			rng := uint64(42)
			next := func() uint64 { rng = rng*6364136223846793005 + 1; return rng >> 33 }
			for round := 0; round < 30; round++ {
				ops := make([]BatchOp, 8)
				for i := range ops {
					id := BlockID(next() % 96)
					if next()%2 == 0 {
						data := []byte(fmt.Sprintf("r%d-i%d-%d", round, i, id))
						ops[i] = BatchOp{Op: OpWrite, ID: id, Data: data}
					} else {
						ops[i] = BatchOp{Op: OpRead, ID: id}
					}
				}
				got, err := cli.AccessBatch(ops)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for i, op := range ops {
					if op.Op == OpWrite {
						want[op.ID] = append([]byte(nil), op.Data...)
						continue
					}
					exp := want[op.ID]
					if exp == nil {
						if got[i] != nil {
							t.Fatalf("round %d: phantom block %d", round, op.ID)
						}
						continue
					}
					if got[i] == nil || !bytes.Equal(got[i][:len(exp)], exp) {
						t.Fatalf("round %d: block %d corrupted", round, op.ID)
					}
				}
			}
			// The single-access path routes through the same shards.
			if err := cli.Write(7, []byte("direct")); err != nil {
				t.Fatal(err)
			}
			got, err := cli.Read(7)
			if err != nil {
				t.Fatal(err)
			}
			if string(got[:6]) != "direct" {
				t.Fatal("single-access round trip failed")
			}
			if st := cli.Stats(); st.Shards != shards {
				t.Fatalf("Stats().Shards = %d, want %d", st.Shards, shards)
			}
		})
	}
}

// TestShardedLeafUniformityPerShard hammers hot blocks through the
// batched fan-out and chi-square-tests EVERY shard's observed leaf
// sequence against uniform over that shard's own leaf space: the
// partition must not degrade any single tree's obliviousness.
func TestShardedLeafUniformityPerShard(t *testing.T) {
	const shards = 4
	cli, mems := newShardedMem(t, shards, 1024)
	observed := make([][]uint64, shards)
	for i, m := range mems {
		i := i
		m.SetObserver(func(ev AccessEvent) {
			if !ev.Write {
				observed[i] = append(observed[i], ev.Leaf)
			}
		})
	}
	// One hot block per shard, found by the public hash.
	hot := make([]BlockID, 0, shards)
	seen := make(map[int]bool)
	for id := BlockID(0); len(hot) < shards; id++ {
		if sh := shardOf(id, shards); !seen[sh] {
			seen[sh] = true
			hot = append(hot, id)
		}
	}
	for _, id := range hot {
		if err := cli.Write(id, []byte("hot")); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 1200
	for i := 0; i < rounds; i++ {
		if _, err := cli.ReadMany(hot); err != nil {
			t.Fatal(err)
		}
	}
	for sh, leaves := range observed {
		n := mems[sh].Leaves()
		if uint64(len(leaves)) < 4*n {
			t.Fatalf("shard %d: only %d observations for %d leaves", sh, len(leaves), n)
		}
		counts := make(map[uint64]int)
		for _, l := range leaves {
			counts[l]++
		}
		expected := float64(len(leaves)) / float64(n)
		var chi2 float64
		for leaf := uint64(0); leaf < n; leaf++ {
			diff := float64(counts[leaf]) - expected
			chi2 += diff * diff / expected
		}
		df := float64(n - 1)
		if chi2 > df+6*1.4142*df {
			t.Fatalf("shard %d leaf distribution non-uniform: chi2=%.1f df=%.0f", sh, chi2, df)
		}
	}
}

// TestShardedNoCrossShardTraffic pins the isolation property: accessing
// a block generates ORAM traffic ONLY on its owning shard. The other
// trees see nothing — there is no cross-shard padding, batching side
// channel, or shared state that could correlate them.
func TestShardedNoCrossShardTraffic(t *testing.T) {
	const shards = 4
	cli, mems := newShardedMem(t, shards, 512)
	events := make([]int, shards)
	for i, m := range mems {
		i := i
		m.SetObserver(func(AccessEvent) { events[i]++ })
	}
	const id = BlockID(5)
	owner := shardOf(id, shards)
	if err := cli.Write(id, []byte("lonely")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := cli.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	for sh, n := range events {
		if sh == owner && n == 0 {
			t.Fatalf("owning shard %d saw no traffic", sh)
		}
		if sh != owner && n != 0 {
			t.Fatalf("shard %d saw %d events for a block owned by shard %d — cross-shard leak", sh, n, owner)
		}
	}
}

// TestShardedStashBounded checks the per-tree stash bound survives the
// partition: every shard's stash stays O(log n) of ITS OWN tree under a
// sustained batched workload.
func TestShardedStashBounded(t *testing.T) {
	cli, _ := newShardedMem(t, 4, 512)
	rng := uint64(7)
	next := func() uint64 { rng = rng*6364136223846793005 + 1; return rng >> 33 }
	payload := make([]byte, BlockSize)
	for round := 0; round < 60; round++ {
		ops := make([]BatchOp, 16)
		for i := range ops {
			id := BlockID(next() % 120)
			if next()%3 == 0 {
				ops[i] = BatchOp{Op: OpWrite, ID: id, Data: payload}
			} else {
				ops[i] = BatchOp{Op: OpRead, ID: id}
			}
		}
		if _, err := cli.AccessBatch(ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for sh, st := range cli.ShardStats() {
		if st.MaxStash > 8*st.Depth {
			t.Fatalf("shard %d stash grew to %d (depth %d)", sh, st.MaxStash, st.Depth)
		}
	}
}

// TestShardedClockCharging verifies the overlapped cost arithmetic: one
// fan-out round charges the link RTT once, the SLOWEST shard's serial
// server time, and the whole batch's serial on-chip client work.
func TestShardedClockCharging(t *testing.T) {
	const shards = 4
	mems := make([]Server, shards)
	perShard := uint64(128)
	for i := range mems {
		m, err := NewMemServer(perShard)
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
	}
	clock := simclock.NewClock()
	cal := simclock.DefaultCalibration()
	cli, err := NewShardedClient(mems, testKey(), WithShardClock(clock, cal))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]BlockID, 12)
	for i := range ids {
		ids[i] = BlockID(i)
	}
	start := clock.Now()
	if _, err := cli.ReadMany(ids); err != nil {
		t.Fatal(err)
	}
	// Recompute the expected charge from the public hash.
	perShardQ := make([]int, shards)
	for _, id := range ids {
		perShardQ[shardOf(id, shards)]++
	}
	maxQ, blocks := 0, 0
	depth := cli.ShardStats()[0].Depth
	for _, q := range perShardQ {
		if q > maxQ {
			maxQ = q
		}
		blocks += q * depth * BucketSize
	}
	want := cal.ORAMBatchCost(maxQ, blocks)
	if got := clock.Now() - start; got != want {
		t.Fatalf("fan-out round charged %v, want ORAMBatchCost(maxQ=%d, blocks=%d) = %v",
			got, maxQ, blocks, want)
	}
	// Sanity: the overlapped charge beats the single-tree charge for the
	// same batch whenever the fan-out actually splits it.
	if single := cal.ORAMBatchCost(len(ids), blocks); want >= single {
		t.Fatalf("overlapped charge %v not below single-tree %v", want, single)
	}
}

// TestShardedTamperDetected: corrupting one shard's bucket store must
// surface ErrTampered through the fan-out on the next touch.
func TestShardedTamperDetected(t *testing.T) {
	cli, mems := newShardedMem(t, 4, 512)
	const id = BlockID(9)
	if err := cli.Write(id, []byte("integrity")); err != nil {
		t.Fatal(err)
	}
	owner := shardOf(id, 4)
	// Corrupt every stored bucket of the owning tree (in-package test
	// hook — TamperBucket's single-byte flip could land on a bucket the
	// next path read misses): wherever the block lives, its read fails
	// authentication.
	m := mems[owner]
	m.mu.Lock()
	for node := range m.buckets {
		if len(m.buckets[node]) > 0 {
			m.buckets[node][0] ^= 0x01
		}
	}
	m.mu.Unlock()
	if _, err := cli.ReadMany([]BlockID{id}); !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered shard read: %v, want ErrTampered", err)
	}
}

func TestShardedConfigErrors(t *testing.T) {
	if _, err := NewShardedClient(nil, testKey()); !errors.Is(err, ErrShards) {
		t.Fatalf("no servers: %v, want ErrShards", err)
	}
	m, err := NewMemServer(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedClient([]Server{m}, []byte("short")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: %v, want ErrBadKey", err)
	}
	cli, _ := newShardedMem(t, 2, 128)
	big := make([]byte, BlockSize+1)
	if _, err := cli.AccessBatch([]BatchOp{{Op: OpWrite, ID: 1, Data: big}}); !errors.Is(err, ErrBlockTooBig) {
		t.Fatalf("oversized write: %v, want ErrBlockTooBig", err)
	}
	if len(stats(cli)) != 2 {
		t.Fatal("ShardStats length mismatch")
	}
}

func stats(c *ShardedClient) []Stats { return c.ShardStats() }
