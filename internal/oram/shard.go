package oram

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"hardtape/internal/simclock"
	"hardtape/internal/telemetry"
)

// Accessor is the trusted-side block access surface shared by the
// single-tree Client and the ShardedClient, so consumers (the pager,
// the device) are agnostic to the shard count.
type Accessor interface {
	Read(id BlockID) ([]byte, error)
	Write(id BlockID, data []byte) error
	ReadMany(ids []BlockID) ([][]byte, error)
	AccessBatch(ops []BatchOp) ([][]byte, error)
	// SetTrace attributes subsequent accesses to a distributed-trace
	// span (zero parent detaches). Must be called under the same
	// serialization as the access methods.
	SetTrace(tr *telemetry.Tracer, parent telemetry.SpanContext)
	Stats() Stats
}

var (
	_ Accessor = (*Client)(nil)
	_ Accessor = (*ShardedClient)(nil)
)

// ErrShards rejects invalid shard configurations.
var ErrShards = errors.New("oram: invalid shard configuration")

// shardOf assigns a block to a shard by a stable hash of its id
// (splitmix64 finalizer). The assignment is a pure function of the id,
// so it survives restarts, is identical on every device sharing the
// tree set, and — crucially for obliviousness — is independent of the
// access sequence: the adversary learns only which shard serves a
// block, which the partitioning already makes public, never anything
// about the access pattern within a shard.
func shardOf(id BlockID, shards int) int {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// deriveShardKey derives a per-shard bucket key from the master ORAM
// key (HMAC-SHA256 with a shard-indexed label). Distinct keys
// domain-separate the shards: a sealed bucket from shard i cannot be
// relocated to the same node index of shard j without failing
// authentication, extending the bucket-index associated data's
// anti-relocation guarantee across trees.
func deriveShardKey(master []byte, label string) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// ShardedClient partitions blocks across K independent Path ORAM trees
// and fans batched accesses out across them in one overlapped round.
// Every shard owns a full private client — stash, position map,
// cryptor, scratch — so shards never share mutable structures and the
// per-shard sub-batches run concurrently without locks. Like Client,
// the ShardedClient is NOT safe for concurrent use: the Hypervisor
// serializes logical queries, and the fan-out parallelism lives
// entirely inside one call.
type ShardedClient struct {
	shards []*Client
	// servers mirrors shards' backing stores, kept for Sync/Close of
	// durable backends.
	servers []Server
	clock   *simclock.Clock
	cal     simclock.Calibration
	timed   bool
	// stores, when non-nil, checkpoints each shard's stash + position
	// map after every ckptEvery-th batch (see persist.go).
	stores    []*CheckpointStore
	ckptEvery int
	rounds    uint64
	// fan-out scratch, reused across calls (single-goroutine contract).
	subOps [][]BatchOp
	subIdx [][]int
	subOut [][][]byte
	subErr []error
	// ttr/tparent carry the current bundle's distributed-trace
	// identity (SetTrace), under the caller's serialization.
	ttr     *telemetry.Tracer
	tparent telemetry.SpanContext
}

// ShardOption configures a ShardedClient.
type ShardOption func(*ShardedClient) error

// WithShardClock makes the client charge virtual time per round: the
// link RTT once, the slowest shard's serial server processing, and the
// full batch's serial on-chip client work (one Hypervisor does all the
// stash/crypto work regardless of the fan-out width).
func WithShardClock(clock *simclock.Clock, cal simclock.Calibration) ShardOption {
	return func(s *ShardedClient) error {
		s.clock, s.cal, s.timed = clock, cal, true
		return nil
	}
}

// WithShardTelemetry instruments every shard client on reg. Counters
// are shared series and sum across shards; the stash-peak gauge keeps
// the maximum over shards (SetMax), while the instantaneous stash
// gauge reflects the most recently reporting shard.
func WithShardTelemetry(reg *telemetry.Registry) ShardOption {
	return func(s *ShardedClient) error {
		if reg == nil {
			return nil
		}
		for _, c := range s.shards {
			WithTelemetry(reg)(c)
		}
		return nil
	}
}

// WithShardPersistence attaches one checkpoint store per shard and
// checkpoints stash + position map every `every` batches (min 1). See
// persist.go for the shadow-epoch scheme.
func WithShardPersistence(stores []*CheckpointStore, every int) ShardOption {
	return func(s *ShardedClient) error {
		if len(stores) != len(s.shards) {
			return fmt.Errorf("%w: %d checkpoint stores for %d shards", ErrShards, len(stores), len(s.shards))
		}
		if every < 1 {
			every = 1
		}
		s.stores, s.ckptEvery = stores, every
		return nil
	}
}

// NewShardedClient builds a shard-aware client over one server per
// shard. Each shard's bucket key is derived from the master key
// (deriveShardKey), so sibling devices sharing the master key agree on
// every shard's key.
func NewShardedClient(servers []Server, key []byte, opts ...ShardOption) (*ShardedClient, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("%w: need at least one server", ErrShards)
	}
	if len(key) != KeySize {
		return nil, ErrBadKey
	}
	s := &ShardedClient{
		servers: servers,
		shards:  make([]*Client, len(servers)),
		subOps:  make([][]BatchOp, len(servers)),
		subIdx:  make([][]int, len(servers)),
		subOut:  make([][][]byte, len(servers)),
		subErr:  make([]error, len(servers)),
	}
	for i, srv := range servers {
		shardKey := deriveShardKey(key, fmt.Sprintf("hardtape-oram-shard-%d", i))
		c, err := NewClient(srv, shardKey)
		if err != nil {
			return nil, fmt.Errorf("oram: shard %d: %w", i, err)
		}
		s.shards[i] = c
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedClient) Shards() int { return len(s.shards) }

// SetTrace installs the distributed-trace identity for subsequent
// accesses. Shard clients receive a Trace-only context (Span zero):
// invalid as a span parent, so they never open their own redundant
// "oram.batch" spans under the per-shard fan-out spans this client
// emits, yet their latency-histogram exemplars still carry the trace
// id. Must be called under the caller's query serialization, like
// every other method.
func (s *ShardedClient) SetTrace(tr *telemetry.Tracer, parent telemetry.SpanContext) {
	s.ttr, s.tparent = tr, parent
	for _, c := range s.shards {
		c.SetTrace(tr, telemetry.SpanContext{Trace: parent.Trace})
	}
}

// Read fetches a block from its owning shard (one full oblivious path
// access there; the other shards see nothing, which leaks only the
// public id→shard hash).
func (s *ShardedClient) Read(id BlockID) ([]byte, error) {
	sh := s.shards[shardOf(id, len(s.shards))]
	data, err := sh.Read(id)
	s.chargeRound([]int{1}, sh.depth*BucketSize)
	if err != nil {
		return nil, err
	}
	if err := s.maybeCheckpoint(); err != nil {
		return nil, err
	}
	return data, nil
}

// Write stores a block on its owning shard.
func (s *ShardedClient) Write(id BlockID, data []byte) error {
	sh := s.shards[shardOf(id, len(s.shards))]
	err := sh.Write(id, data)
	s.chargeRound([]int{1}, sh.depth*BucketSize)
	if err != nil {
		return err
	}
	return s.maybeCheckpoint()
}

// ReadMany fetches many blocks in one overlapped round across all
// shards holding any of them. The result is aligned with ids; missing
// blocks yield nil entries.
func (s *ShardedClient) ReadMany(ids []BlockID) ([][]byte, error) {
	ops := make([]BatchOp, len(ids))
	for i, id := range ids {
		ops[i] = BatchOp{Op: OpRead, ID: id}
	}
	return s.AccessBatch(ops)
}

// AccessBatch splits the ops into per-shard sub-batches, fans them out
// concurrently — each shard runs its own ReadPaths/WritePaths round
// against its private tree — and reassembles the results in request
// order. Obliviousness is preserved per shard: every sub-batch is a
// regular Client.AccessBatch with fresh uniform remaps drawn from that
// shard's own leaf space, and the adversary observing all shards sees
// K independent uniform leaf sequences whose interleaving depends only
// on the public id→shard hash.
func (s *ShardedClient) AccessBatch(ops []BatchOp) ([][]byte, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	for _, op := range ops {
		if op.Op == OpWrite && len(op.Data) > BlockSize {
			return nil, ErrBlockTooBig
		}
	}
	k := len(s.shards)
	for i := 0; i < k; i++ {
		s.subOps[i] = s.subOps[i][:0]
		s.subIdx[i] = s.subIdx[i][:0]
		s.subOut[i] = nil
		s.subErr[i] = nil
	}
	for i, op := range ops {
		sh := shardOf(op.ID, k)
		s.subOps[sh] = append(s.subOps[sh], op)
		s.subIdx[sh] = append(s.subIdx[sh], i)
	}

	// One overlapped round: every non-empty shard's sub-batch runs on
	// its own goroutine against its own client (no shared mutable
	// state). A shard client is touched by exactly one goroutine here,
	// so the Client's single-goroutine contract holds per shard.
	var wg sync.WaitGroup
	queries := make([]int, 0, k)
	blocks := 0
	for i := 0; i < k; i++ {
		if len(s.subOps[i]) == 0 {
			continue
		}
		queries = append(queries, len(s.subOps[i]))
		blocks += len(s.subOps[i]) * s.shards[i].depth * BucketSize
		// One trace span per shard sub-batch, started here (goroutine
		// creation gives the worker a happens-before view of it) and
		// ended on the worker; shard index and size are public — the
		// id→shard hash already reveals them to the server.
		var tsp *telemetry.TraceSpan
		if s.ttr != nil && s.tparent.Valid() {
			tsp = s.ttr.StartSpan("oram.shard_batch", s.tparent)
			tsp.AddInt("shard", int64(i))
			tsp.AddInt("blocks", int64(len(s.subOps[i])))
		}
		wg.Add(1)
		go func(i int, tsp *telemetry.TraceSpan) {
			defer wg.Done()
			s.subOut[i], s.subErr[i] = s.shards[i].AccessBatch(s.subOps[i])
			tsp.SetError(s.subErr[i])
			tsp.End()
		}(i, tsp)
	}
	wg.Wait()
	s.chargeRound(queries, blocks)

	var firstErr error
	for i := 0; i < k; i++ {
		if s.subErr[i] != nil && firstErr == nil {
			firstErr = s.subErr[i]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([][]byte, len(ops))
	for i := 0; i < k; i++ {
		for j, idx := range s.subIdx[i] {
			out[idx] = s.subOut[i][j]
		}
	}
	if err := s.maybeCheckpoint(); err != nil {
		return nil, err
	}
	return out, nil
}

// chargeRound advances the virtual clock for one fan-out round: RTT
// once (the sub-batches leave back to back and overlap on the link),
// the slowest shard's serial per-query server work, and the whole
// batch's serial on-chip per-block client work
// (simclock.ORAMBatchCost arithmetic with max-shard queries).
func (s *ShardedClient) chargeRound(queries []int, blocks int) {
	s.rounds++
	if !s.timed {
		return
	}
	maxQ := 0
	for _, q := range queries {
		if q > maxQ {
			maxQ = q
		}
	}
	s.clock.Advance(s.cal.ORAMBatchCost(maxQ, blocks))
}

// maybeCheckpoint persists every shard's client state at the
// configured batch cadence (no-op without persistence).
func (s *ShardedClient) maybeCheckpoint() error {
	if s.stores == nil || s.rounds%uint64(s.ckptEvery) != 0 {
		return nil
	}
	return s.Checkpoint()
}

// Sync flushes every durable shard server to stable storage (no-op for
// in-memory or remote servers).
func (s *ShardedClient) Sync() error {
	for i, srv := range s.servers {
		if fs, ok := srv.(interface{ Sync() error }); ok {
			if err := fs.Sync(); err != nil {
				return fmt.Errorf("oram: sync shard %d: %w", i, err)
			}
		}
	}
	return nil
}

// Close releases every closable shard server (file handles, TCP
// connections).
func (s *ShardedClient) Close() error {
	var firstErr error
	for _, srv := range s.servers {
		if c, ok := srv.(io.Closer); ok {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Stats aggregates the per-shard counters: accesses, round trips, and
// bytes sum; MaxStash and StashSize report the worst shard (the stash
// bound is a per-tree property); Depth reports the deepest shard.
func (s *ShardedClient) Stats() Stats {
	var agg Stats
	agg.Shards = len(s.shards)
	for _, c := range s.shards {
		st := c.Stats()
		agg.Accesses += st.Accesses
		agg.Batches += st.Batches
		agg.BytesMoved += st.BytesMoved
		if st.MaxStash > agg.MaxStash {
			agg.MaxStash = st.MaxStash
		}
		if st.StashSize > agg.StashSize {
			agg.StashSize = st.StashSize
		}
		if st.Depth > agg.Depth {
			agg.Depth = st.Depth
		}
	}
	return agg
}

// ShardStats returns each shard's own counters (tests, diagnostics).
func (s *ShardedClient) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, c := range s.shards {
		out[i] = c.Stats()
	}
	return out
}
