// Package oram implements Path ORAM (Stefanov & Shi), the backbone of
// HarDTAPE's world-state access-pattern protection (paper §IV-D).
//
// Data is stored as fixed 1 KB blocks (the paper's page size) in a
// binary tree of Z=4 buckets held by an untrusted server. The trusted
// client (part of the Hypervisor) keeps the stash and position map
// on-chip. Every access reads and rewrites one root-to-leaf path with
// randomized re-encryption, so the server observes only a uniform
// sequence of leaf indices and fresh ciphertexts.
package oram

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// Protocol constants.
const (
	// BlockSize is the paper's 1 KB ORAM block (page) size.
	BlockSize = 1024
	// BucketSize is Z, the blocks per bucket.
	BucketSize = 4
	// slotHeader is the per-slot metadata: block id (8) + leaf (8).
	slotHeader = 16
	// bucketPlain is the plaintext size of a serialized bucket.
	bucketPlain = BucketSize * (slotHeader + BlockSize)
	// KeySize is the AES-256 key length for bucket encryption.
	KeySize = 32
	// dummyID marks an empty slot.
	dummyID = ^uint64(0)
)

// Errors.
var (
	ErrBadKey       = errors.New("oram: key must be 32 bytes")
	ErrCapacity     = errors.New("oram: capacity must be at least 2 blocks")
	ErrBlockTooBig  = errors.New("oram: block data exceeds BlockSize")
	ErrNotFound     = errors.New("oram: block not found")
	ErrTampered     = errors.New("oram: bucket authentication failed")
	ErrBadBucket    = errors.New("oram: malformed bucket")
	ErrStashOverrun = errors.New("oram: stash exceeded safety bound")
)

// BlockID is a dense ORAM block index. The pager maps Ethereum's
// sparse keys onto these.
type BlockID uint64

// block is one stash-resident data block.
type block struct {
	id   BlockID
	leaf uint64
	data []byte // exactly BlockSize
}

// bucket is one tree node's plaintext contents.
type bucket struct {
	slots [BucketSize]block
}

// newEmptyBucket returns a bucket of dummies.
func newEmptyBucket() *bucket {
	var b bucket
	for i := range b.slots {
		b.slots[i].id = BlockID(dummyID)
	}
	return &b
}

// serialize encodes the bucket to its fixed plaintext layout.
func (b *bucket) serialize() []byte {
	out := make([]byte, bucketPlain)
	b.serializeInto(out)
	return out
}

// serializeInto encodes the bucket into a caller-owned bucketPlain
// buffer. Dummy-slot data regions are zeroed so a reused buffer never
// carries stale plaintext into the next seal.
func (b *bucket) serializeInto(out []byte) {
	off := 0
	for _, s := range b.slots {
		binary.BigEndian.PutUint64(out[off:], uint64(s.id))
		binary.BigEndian.PutUint64(out[off+8:], s.leaf)
		body := out[off+slotHeader : off+slotHeader+BlockSize]
		if s.data == nil {
			for i := range body {
				body[i] = 0
			}
		} else {
			copy(body, s.data)
		}
		off += slotHeader + BlockSize
	}
}

// parseBucket decodes the fixed plaintext layout. Slot data ALIASES
// the input buffer (no copy): callers that retain blocks past the
// lifetime of data must copy them out first.
func parseBucket(data []byte) (*bucket, error) {
	b := new(bucket)
	if err := parseBucketInto(b, data); err != nil {
		return nil, err
	}
	return b, nil
}

// parseBucketInto is parseBucket decoding into a caller-owned bucket
// (the hot path parses one bucket per decrypt; a fresh struct per call
// would escape to the heap every time).
func parseBucketInto(b *bucket, data []byte) error {
	if len(data) != bucketPlain {
		return fmt.Errorf("%w: plaintext length %d", ErrBadBucket, len(data))
	}
	off := 0
	for i := range b.slots {
		b.slots[i].id = BlockID(binary.BigEndian.Uint64(data[off:]))
		b.slots[i].leaf = binary.BigEndian.Uint64(data[off+8:])
		if uint64(b.slots[i].id) != dummyID {
			b.slots[i].data = data[off+slotHeader : off+slotHeader+BlockSize]
		} else {
			b.slots[i].data = nil
		}
		off += slotHeader + BlockSize
	}
	return nil
}

// --- buffer pools -------------------------------------------------------
//
// seal/open/parseBucket run once per bucket per access; at depth d and
// Z=4 that is 2d seals + up to d opens per logical access. Pooling the
// three hot buffer classes (1 KB block bodies, bucketPlain plaintexts,
// bucketPlain+overhead ciphertexts) removes them from the allocation
// profile entirely.

// The pools store POINTERS TO FIXED-SIZE ARRAYS, not slices: a pointer
// fits an interface word, so Get/Put are allocation-free, where putting
// a []byte would box the slice header on every Put.

var blockBufPool = sync.Pool{
	New: func() any { return new([BlockSize]byte) },
}

// getBlockBuf returns a BlockSize scratch buffer (contents undefined).
func getBlockBuf() []byte { return blockBufPool.Get().(*[BlockSize]byte)[:] }

// putBlockBuf recycles a buffer previously returned by getBlockBuf.
func putBlockBuf(b []byte) {
	if len(b) == BlockSize && cap(b) == BlockSize {
		blockBufPool.Put((*[BlockSize]byte)(b))
	}
}

// blockStructPool recycles stash block structs; their data buffers
// come from blockBufPool and move ownership on eviction.
var blockStructPool = sync.Pool{
	New: func() any { return new(block) },
}

// getBlockStruct returns a stash block with a pooled BlockSize data
// buffer attached (contents undefined).
func getBlockStruct() *block {
	b := blockStructPool.Get().(*block)
	if b.data == nil {
		b.data = getBlockBuf()
	}
	return b
}

// putBlockStruct recycles a stash block struct. The caller must have
// taken ownership of (or recycled) the data buffer and set it nil if
// it is no longer this block's to keep.
func putBlockStruct(b *block) {
	blockStructPool.Put(b)
}

var plainBufPool = sync.Pool{
	New: func() any { return new([bucketPlain]byte) },
}

func getPlainBuf() []byte { return plainBufPool.Get().(*[bucketPlain]byte)[:] }

func putPlainBuf(b []byte) {
	if len(b) == bucketPlain && cap(b) == bucketPlain {
		plainBufPool.Put((*[bucketPlain]byte)(b))
	}
}

// cipherBufCap covers nonce + bucketPlain + GCM tag with headroom. Wire
// and server bucket copies share this pool: every sealed bucket fits.
const cipherBufCap = bucketPlain + 64

var cipherBufPool = sync.Pool{
	New: func() any { return new([cipherBufCap]byte) },
}

func getCipherBuf() []byte {
	p := cipherBufPool.Get().(*[cipherBufCap]byte)
	return p[:0]
}

func putCipherBuf(b []byte) {
	if cap(b) == cipherBufCap {
		cipherBufPool.Put((*[cipherBufCap]byte)(b[:cipherBufCap]))
	}
}

// cryptor performs the randomized re-encryption of buckets (AES-GCM:
// fresh nonce every write, so identical plaintexts are unlinkable, and
// any off-chip tampering is detected — paper attack A6).
//
// Nonces are drawn from the CSPRNG in bulk: one rand.Read refills a
// scratch block covering many seals, amortizing the getrandom syscall
// over a whole path (or batch) eviction. Each seal still consumes
// fresh, never-reused CSPRNG output. The cryptor shares its owning
// Client's single-goroutine contract.
type cryptor struct {
	aead     cipher.AEAD
	nonceBuf [32 * 16]byte
	nonceOff int
	// adBuf is the associated-data scratch; a local array would escape
	// through the cipher.AEAD interface and allocate on every call.
	adBuf [8]byte
}

func newCryptor(key []byte) (*cryptor, error) {
	if len(key) != KeySize {
		return nil, ErrBadKey
	}
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("oram: %w", err)
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, fmt.Errorf("oram: %w", err)
	}
	c := &cryptor{aead: aead}
	c.nonceOff = len(c.nonceBuf) // force a refill on first use
	return c, nil
}

// nextNonce returns ns bytes of fresh CSPRNG output, refilling the
// bulk buffer when exhausted.
func (c *cryptor) nextNonce(ns int) ([]byte, error) {
	if c.nonceOff+ns > len(c.nonceBuf) {
		if _, err := rand.Read(c.nonceBuf[:]); err != nil {
			return nil, fmt.Errorf("oram: nonce: %w", err)
		}
		c.nonceOff = 0
	}
	n := c.nonceBuf[c.nonceOff : c.nonceOff+ns]
	c.nonceOff += ns
	return n, nil
}

// seal encrypts a bucket plaintext with a fresh random nonce. The
// bucket index is bound as associated data to prevent relocation.
func (c *cryptor) seal(bucketIdx uint64, plaintext []byte) ([]byte, error) {
	return c.sealInto(bucketIdx, plaintext, nil)
}

// sealInto is seal appending nonce||ciphertext to dst (pass a pooled
// buffer truncated to length 0 to avoid the allocation).
func (c *cryptor) sealInto(bucketIdx uint64, plaintext, dst []byte) ([]byte, error) {
	nonce, err := c.nextNonce(c.aead.NonceSize())
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint64(c.adBuf[:], bucketIdx)
	dst = append(dst, nonce...)
	return c.aead.Seal(dst, nonce, plaintext, c.adBuf[:]), nil
}

// open decrypts and authenticates a bucket ciphertext.
func (c *cryptor) open(bucketIdx uint64, ciphertext []byte) ([]byte, error) {
	return c.openInto(bucketIdx, ciphertext, nil)
}

// openInto is open appending the plaintext to dst (pass a pooled
// buffer truncated to length 0 to avoid the allocation).
func (c *cryptor) openInto(bucketIdx uint64, ciphertext, dst []byte) ([]byte, error) {
	ns := c.aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, ErrTampered
	}
	binary.BigEndian.PutUint64(c.adBuf[:], bucketIdx)
	pt, err := c.aead.Open(dst, ciphertext[:ns], ciphertext[ns:], c.adBuf[:])
	if err != nil {
		return nil, ErrTampered
	}
	return pt, nil
}

// randomLeaf samples a uniform leaf index in [0, nLeaves).
func randomLeaf(nLeaves uint64) uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failure is unrecoverable for obliviousness.
		panic(fmt.Sprintf("oram: rng failure: %v", err))
	}
	return binary.BigEndian.Uint64(buf[:]) % nLeaves
}

// pathIndices returns the bucket indices from the root to the given
// leaf in a 1-indexed heap layout (root = 1).
func pathIndices(leaf uint64, depth int) []uint64 {
	out := make([]uint64, depth)
	node := leaf + (uint64(1) << (depth - 1)) // leaf's heap index
	for i := depth - 1; i >= 0; i-- {
		out[i] = node
		node /= 2
	}
	return out
}

// pathIndicesInto is pathIndices writing into a caller-owned slice of
// length depth.
func pathIndicesInto(leaf uint64, depth int, out []uint64) {
	node := leaf + (uint64(1) << (depth - 1))
	for i := depth - 1; i >= 0; i-- {
		out[i] = node
		node /= 2
	}
}

// intersectLevel returns the deepest tree level (0 = root) shared by
// the paths to leaves a and b: the level below which the two paths
// diverge. Equal leaves share the whole path (depth-1).
func intersectLevel(a, b uint64, depth int) int {
	if a == b {
		return depth - 1
	}
	return depth - 1 - bits.Len64(a^b)
}

// treeDepth returns the number of levels needed for capacity blocks:
// leaves ≥ capacity/BucketSize with a minimum of 2 levels.
func treeDepth(capacity uint64) int {
	leaves := (capacity + BucketSize - 1) / BucketSize
	depth := 1
	for (uint64(1) << (depth - 1)) < leaves {
		depth++
	}
	if depth < 2 {
		depth = 2
	}
	return depth
}
