// Package oram implements Path ORAM (Stefanov & Shi), the backbone of
// HarDTAPE's world-state access-pattern protection (paper §IV-D).
//
// Data is stored as fixed 1 KB blocks (the paper's page size) in a
// binary tree of Z=4 buckets held by an untrusted server. The trusted
// client (part of the Hypervisor) keeps the stash and position map
// on-chip. Every access reads and rewrites one root-to-leaf path with
// randomized re-encryption, so the server observes only a uniform
// sequence of leaf indices and fresh ciphertexts.
package oram

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol constants.
const (
	// BlockSize is the paper's 1 KB ORAM block (page) size.
	BlockSize = 1024
	// BucketSize is Z, the blocks per bucket.
	BucketSize = 4
	// slotHeader is the per-slot metadata: block id (8) + leaf (8).
	slotHeader = 16
	// bucketPlain is the plaintext size of a serialized bucket.
	bucketPlain = BucketSize * (slotHeader + BlockSize)
	// KeySize is the AES-256 key length for bucket encryption.
	KeySize = 32
	// dummyID marks an empty slot.
	dummyID = ^uint64(0)
)

// Errors.
var (
	ErrBadKey       = errors.New("oram: key must be 32 bytes")
	ErrCapacity     = errors.New("oram: capacity must be at least 2 blocks")
	ErrBlockTooBig  = errors.New("oram: block data exceeds BlockSize")
	ErrNotFound     = errors.New("oram: block not found")
	ErrTampered     = errors.New("oram: bucket authentication failed")
	ErrBadBucket    = errors.New("oram: malformed bucket")
	ErrStashOverrun = errors.New("oram: stash exceeded safety bound")
)

// BlockID is a dense ORAM block index. The pager maps Ethereum's
// sparse keys onto these.
type BlockID uint64

// block is one stash-resident data block.
type block struct {
	id   BlockID
	leaf uint64
	data []byte // exactly BlockSize
}

// bucket is one tree node's plaintext contents.
type bucket struct {
	slots [BucketSize]block
}

// newEmptyBucket returns a bucket of dummies.
func newEmptyBucket() *bucket {
	var b bucket
	for i := range b.slots {
		b.slots[i].id = BlockID(dummyID)
	}
	return &b
}

// serialize encodes the bucket to its fixed plaintext layout.
func (b *bucket) serialize() []byte {
	out := make([]byte, bucketPlain)
	off := 0
	for _, s := range b.slots {
		binary.BigEndian.PutUint64(out[off:], uint64(s.id))
		binary.BigEndian.PutUint64(out[off+8:], s.leaf)
		copy(out[off+slotHeader:off+slotHeader+BlockSize], s.data)
		off += slotHeader + BlockSize
	}
	return out
}

// parseBucket decodes the fixed plaintext layout.
func parseBucket(data []byte) (*bucket, error) {
	if len(data) != bucketPlain {
		return nil, fmt.Errorf("%w: plaintext length %d", ErrBadBucket, len(data))
	}
	var b bucket
	off := 0
	for i := range b.slots {
		b.slots[i].id = BlockID(binary.BigEndian.Uint64(data[off:]))
		b.slots[i].leaf = binary.BigEndian.Uint64(data[off+8:])
		if uint64(b.slots[i].id) != dummyID {
			blk := make([]byte, BlockSize)
			copy(blk, data[off+slotHeader:off+slotHeader+BlockSize])
			b.slots[i].data = blk
		}
		off += slotHeader + BlockSize
	}
	return &b, nil
}

// cryptor performs the randomized re-encryption of buckets (AES-GCM:
// fresh nonce every write, so identical plaintexts are unlinkable, and
// any off-chip tampering is detected — paper attack A6).
type cryptor struct {
	aead cipher.AEAD
}

func newCryptor(key []byte) (*cryptor, error) {
	if len(key) != KeySize {
		return nil, ErrBadKey
	}
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("oram: %w", err)
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, fmt.Errorf("oram: %w", err)
	}
	return &cryptor{aead: aead}, nil
}

// seal encrypts a bucket plaintext with a fresh random nonce. The
// bucket index is bound as associated data to prevent relocation.
func (c *cryptor) seal(bucketIdx uint64, plaintext []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("oram: nonce: %w", err)
	}
	var ad [8]byte
	binary.BigEndian.PutUint64(ad[:], bucketIdx)
	out := c.aead.Seal(nonce, nonce, plaintext, ad[:])
	return out, nil
}

// open decrypts and authenticates a bucket ciphertext.
func (c *cryptor) open(bucketIdx uint64, ciphertext []byte) ([]byte, error) {
	ns := c.aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, ErrTampered
	}
	var ad [8]byte
	binary.BigEndian.PutUint64(ad[:], bucketIdx)
	pt, err := c.aead.Open(nil, ciphertext[:ns], ciphertext[ns:], ad[:])
	if err != nil {
		return nil, ErrTampered
	}
	return pt, nil
}

// randomLeaf samples a uniform leaf index in [0, nLeaves).
func randomLeaf(nLeaves uint64) uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failure is unrecoverable for obliviousness.
		panic(fmt.Sprintf("oram: rng failure: %v", err))
	}
	return binary.BigEndian.Uint64(buf[:]) % nLeaves
}

// pathIndices returns the bucket indices from the root to the given
// leaf in a 1-indexed heap layout (root = 1).
func pathIndices(leaf uint64, depth int) []uint64 {
	out := make([]uint64, depth)
	node := leaf + (uint64(1) << (depth - 1)) // leaf's heap index
	for i := depth - 1; i >= 0; i-- {
		out[i] = node
		node /= 2
	}
	return out
}

// treeDepth returns the number of levels needed for capacity blocks:
// leaves ≥ capacity/BucketSize with a minimum of 2 levels.
func treeDepth(capacity uint64) int {
	leaves := (capacity + BucketSize - 1) / BucketSize
	depth := 1
	for (uint64(1) << (depth - 1)) < leaves {
		depth++
	}
	if depth < 2 {
		depth = 2
	}
	return depth
}
