package oram

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The paper connects HarDTAPE to the SP's ORAM server over Ethernet
// (2 ms RTT). This file provides that transport: a TCP server fronting
// any Server implementation, and a RemoteServer client that satisfies
// the Server interface over the wire. Buckets are already encrypted by
// the ORAM client, so the transport itself needs no confidentiality —
// exactly the paper's trust split.

// Wire opcodes.
const (
	opReadPath  byte = 1
	opWritePath byte = 2
	opMeta      byte = 3

	statusOK  byte = 0
	statusErr byte = 1
)

// maxWireBucket bounds a single bucket ciphertext on the wire.
const maxWireBucket = 16 * bucketPlain

// Transport errors.
var (
	ErrWire = errors.New("oram: wire protocol error")
)

// TCPServer serves a Server over TCP.
type TCPServer struct {
	inner Server
	l     net.Listener

	mu     sync.Mutex
	closed bool
}

// ServeTCP starts serving inner on the listener. It returns
// immediately; use Close to stop.
func ServeTCP(inner Server, l net.Listener) *TCPServer {
	s := &TCPServer{inner: inner, l: l}
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *TCPServer) Addr() net.Addr { return s.l.Addr() }

// Close stops the listener.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.l.Close()
}

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			//hardtape:faulterr-ok a client disconnect ends that connection only; the accept loop must survive it
			_ = s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		op, err := r.ReadByte()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch op {
		case opMeta:
			if err := writeU64(w, uint64(s.inner.Depth())); err != nil {
				return err
			}
			if err := writeU64(w, s.inner.Leaves()); err != nil {
				return err
			}
		case opReadPath:
			leaf, err := readU64(r)
			if err != nil {
				return err
			}
			buckets, err := s.inner.ReadPath(leaf)
			if err != nil {
				if werr := writeStatus(w, err); werr != nil {
					return werr
				}
				break
			}
			if err := w.WriteByte(statusOK); err != nil {
				return err
			}
			if err := writeBuckets(w, buckets); err != nil {
				return err
			}
		case opWritePath:
			leaf, err := readU64(r)
			if err != nil {
				return err
			}
			buckets, err := readBuckets(r)
			if err != nil {
				return err
			}
			if err := s.inner.WritePath(leaf, buckets); err != nil {
				if werr := writeStatus(w, err); werr != nil {
					return werr
				}
				break
			}
			if err := w.WriteByte(statusOK); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: opcode %d", ErrWire, op)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// RemoteServer is a Server backed by a TCP connection. It is safe for
// serialized use by one client (the Hypervisor serializes queries).
type RemoteServer struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	depth  int
	leaves uint64
}

var _ Server = (*RemoteServer)(nil)

// DialServer connects to a TCP ORAM server and fetches its geometry.
func DialServer(addr string) (*RemoteServer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("oram: dial: %w", err)
	}
	rs := &RemoteServer{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}
	if err := rs.w.WriteByte(opMeta); err != nil {
		return nil, err
	}
	if err := rs.w.Flush(); err != nil {
		return nil, err
	}
	depth, err := readU64(rs.r)
	if err != nil {
		return nil, fmt.Errorf("oram: meta: %w", err)
	}
	leaves, err := readU64(rs.r)
	if err != nil {
		return nil, fmt.Errorf("oram: meta: %w", err)
	}
	rs.depth = int(depth)
	rs.leaves = leaves
	return rs, nil
}

// Close closes the connection.
func (rs *RemoteServer) Close() error { return rs.conn.Close() }

// Depth implements Server.
func (rs *RemoteServer) Depth() int { return rs.depth }

// Leaves implements Server.
func (rs *RemoteServer) Leaves() uint64 { return rs.leaves }

// ReadPath implements Server.
func (rs *RemoteServer) ReadPath(leaf uint64) ([][]byte, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.w.WriteByte(opReadPath); err != nil {
		return nil, err
	}
	if err := writeU64(rs.w, leaf); err != nil {
		return nil, err
	}
	if err := rs.w.Flush(); err != nil {
		return nil, err
	}
	if err := readStatus(rs.r); err != nil {
		return nil, err
	}
	return readBuckets(rs.r)
}

// WritePath implements Server.
func (rs *RemoteServer) WritePath(leaf uint64, buckets [][]byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.w.WriteByte(opWritePath); err != nil {
		return err
	}
	if err := writeU64(rs.w, leaf); err != nil {
		return err
	}
	if err := writeBuckets(rs.w, buckets); err != nil {
		return err
	}
	if err := rs.w.Flush(); err != nil {
		return err
	}
	return readStatus(rs.r)
}

// --- wire helpers ---

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}

func writeStatus(w *bufio.Writer, err error) error {
	if err := w.WriteByte(statusErr); err != nil {
		return err
	}
	msg := err.Error()
	if len(msg) > 255 {
		msg = msg[:255]
	}
	if err := w.WriteByte(byte(len(msg))); err != nil {
		return err
	}
	_, werr := w.WriteString(msg)
	return werr
}

func readStatus(r *bufio.Reader) error {
	status, err := r.ReadByte()
	if err != nil {
		return err
	}
	if status == statusOK {
		return nil
	}
	n, err := r.ReadByte()
	if err != nil {
		return err
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return err
	}
	return fmt.Errorf("%w: remote: %s", ErrWire, msg)
}

func writeBuckets(w io.Writer, buckets [][]byte) error {
	if err := writeU64(w, uint64(len(buckets))); err != nil {
		return err
	}
	for _, b := range buckets {
		if err := writeU64(w, uint64(len(b))); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func readBuckets(r io.Reader) ([][]byte, error) {
	count, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if count > 64 {
		return nil, fmt.Errorf("%w: %d buckets", ErrWire, count)
	}
	out := make([][]byte, count)
	for i := range out {
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		if n > maxWireBucket {
			return nil, fmt.Errorf("%w: bucket size %d", ErrWire, n)
		}
		if n == 0 {
			continue
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out[i] = buf
	}
	return out, nil
}
