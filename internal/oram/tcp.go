package oram

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The paper connects HarDTAPE to the SP's ORAM server over Ethernet
// (2 ms RTT). This file provides that transport: a TCP server fronting
// any Server implementation, and a RemoteServer client that satisfies
// the Server interface over the wire. Buckets are already encrypted by
// the ORAM client, so the transport itself needs no confidentiality —
// exactly the paper's trust split.
//
// The protocol is pipelined: every request carries an 8-byte request
// id, responses are matched by id, and a connection may have many
// requests in flight at once. Multi-path opcodes (ReadPaths /
// WritePaths) let a batched client fetch or write N paths for one
// link round trip; the server coalesces back-to-back responses into
// one flush while more requests are already buffered.
//
// Frames:
//
//	request:  [reqID u64][op u8][payload]
//	response: [reqID u64][status u8][payload]

// Wire opcodes.
const (
	opReadPath   byte = 1
	opWritePath  byte = 2
	opMeta       byte = 3
	opReadPaths  byte = 4
	opWritePaths byte = 5

	statusOK  byte = 0
	statusErr byte = 1
)

// maxWireBucket bounds a single bucket ciphertext on the wire.
const maxWireBucket = 16 * bucketPlain

// maxWirePaths bounds the paths in one batched request.
const maxWirePaths = 64

// Transport errors.
var (
	ErrWire = errors.New("oram: wire protocol error")
)

// TCPServer serves a Server over TCP.
type TCPServer struct {
	inner Server
	l     net.Listener

	mu     sync.Mutex
	closed bool
}

// ServeTCP starts serving inner on the listener. It returns
// immediately; use Close to stop.
func ServeTCP(inner Server, l net.Listener) *TCPServer {
	s := &TCPServer{inner: inner, l: l}
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *TCPServer) Addr() net.Addr { return s.l.Addr() }

// Close stops the listener.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.l.Close()
}

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			//hardtape:faulterr-ok a client disconnect ends that connection only; the accept loop must survive it
			_ = s.serveConn(conn)
		}()
	}
}

// serveConn handles one connection. Requests are processed in arrival
// order (so a pipelined client's read-after-write ordering holds), but
// the response flush is deferred while further requests are already
// buffered — pipelined responses leave in one coalesced write.
func (s *TCPServer) serveConn(conn net.Conn) error {
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	for {
		if w.Buffered() > 0 && r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return err
			}
		}
		reqID, err := readU64(r)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		op, err := r.ReadByte()
		if err != nil {
			return err
		}
		if err := s.handle(r, w, reqID, op); err != nil {
			return err
		}
	}
}

// handle decodes one request, runs it against the inner server, and
// writes the response frame. It returns an error only for transport
// failures; server-level errors travel back as statusErr frames.
func (s *TCPServer) handle(r *bufio.Reader, w *bufio.Writer, reqID uint64, op byte) error {
	switch op {
	case opMeta:
		if err := writeU64(w, reqID); err != nil {
			return err
		}
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		if err := writeU64(w, uint64(s.inner.Depth())); err != nil {
			return err
		}
		return writeU64(w, s.inner.Leaves())
	case opReadPath:
		leaf, err := readU64(r)
		if err != nil {
			return err
		}
		buckets, err := s.inner.ReadPath(leaf)
		if err != nil {
			return respondErr(w, reqID, err)
		}
		if err := respondOK(w, reqID); err != nil {
			return err
		}
		err = writeBuckets(w, buckets)
		recycleBuckets(buckets)
		return err
	case opWritePath:
		leaf, err := readU64(r)
		if err != nil {
			return err
		}
		buckets, err := readBuckets(r)
		if err != nil {
			return err
		}
		// The inner server stores copies; the wire buffers recycle.
		err = s.inner.WritePath(leaf, buckets)
		recycleBuckets(buckets)
		if err != nil {
			return respondErr(w, reqID, err)
		}
		return respondOK(w, reqID)
	case opReadPaths:
		leaves, err := readLeaves(r)
		if err != nil {
			return err
		}
		paths, err := s.inner.ReadPaths(leaves)
		if err != nil {
			return respondErr(w, reqID, err)
		}
		if err := respondOK(w, reqID); err != nil {
			return err
		}
		if err := writeU64(w, uint64(len(paths))); err != nil {
			return err
		}
		for _, buckets := range paths {
			if err := writeBuckets(w, buckets); err != nil {
				return err
			}
			recycleBuckets(buckets)
		}
		return nil
	case opWritePaths:
		count, err := readU64(r)
		if err != nil {
			return err
		}
		if count > maxWirePaths {
			return fmt.Errorf("%w: %d paths", ErrWire, count)
		}
		leaves := make([]uint64, count)
		paths := make([][][]byte, count)
		depth := s.inner.Depth()
		flat := make([][]byte, int(count)*depth)
		for i := range leaves {
			if leaves[i], err = readU64(r); err != nil {
				return err
			}
			if paths[i], err = readBucketsInto(r, flat[i*depth:(i+1)*depth]); err != nil {
				return err
			}
		}
		err = s.inner.WritePaths(leaves, paths)
		for _, buckets := range paths {
			recycleBuckets(buckets)
		}
		if err != nil {
			return respondErr(w, reqID, err)
		}
		return respondOK(w, reqID)
	default:
		return fmt.Errorf("%w: opcode %d", ErrWire, op)
	}
}

func respondOK(w *bufio.Writer, reqID uint64) error {
	if err := writeU64(w, reqID); err != nil {
		return err
	}
	return w.WriteByte(statusOK)
}

func respondErr(w *bufio.Writer, reqID uint64, err error) error {
	if werr := writeU64(w, reqID); werr != nil {
		return werr
	}
	return writeStatus(w, err)
}

// pendingCall tracks one in-flight request on a RemoteServer.
type pendingCall struct {
	op byte
	ch chan wireResponse
}

// wireResponse is a decoded response frame (or a transport failure).
type wireResponse struct {
	err   error      // transport or remote error
	meta  [2]uint64  // opMeta: depth, leaves
	paths [][][]byte // opReadPath (one entry) / opReadPaths
}

// RemoteServer is a Server backed by one pipelined TCP connection. It
// is safe for concurrent use: many goroutines may have requests in
// flight at once; responses are matched by request id.
type RemoteServer struct {
	conn net.Conn

	wmu sync.Mutex // serializes request frames on the shared writer
	w   *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	broken  error // sticky transport error; set once, fails all later calls

	depth  int
	leaves uint64
}

var _ Server = (*RemoteServer)(nil)

// DialServer connects to a TCP ORAM server and fetches its geometry.
func DialServer(addr string) (*RemoteServer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("oram: dial: %w", err)
	}
	rs := &RemoteServer{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 1<<16),
		pending: make(map[uint64]*pendingCall),
	}
	go rs.readLoop()
	resp, err := rs.roundTrip(opMeta, nil)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("oram: meta: %w", err)
	}
	rs.depth = int(resp.meta[0])
	rs.leaves = resp.meta[1]
	return rs, nil
}

// Close closes the connection; in-flight requests fail.
func (rs *RemoteServer) Close() error { return rs.conn.Close() }

// Depth implements Server.
func (rs *RemoteServer) Depth() int { return rs.depth }

// Leaves implements Server.
func (rs *RemoteServer) Leaves() uint64 { return rs.leaves }

// readLoop decodes response frames and hands each to its waiting
// caller. Any decode or connection failure poisons the RemoteServer.
func (rs *RemoteServer) readLoop() {
	r := bufio.NewReaderSize(rs.conn, 1<<16)
	for {
		reqID, err := readU64(r)
		if err != nil {
			rs.fail(err)
			return
		}
		call := rs.take(reqID)
		if call == nil {
			rs.fail(fmt.Errorf("%w: unsolicited response id %d", ErrWire, reqID))
			return
		}
		resp, err := readResponse(r, call.op, rs.depth)
		if err != nil {
			resp = wireResponse{err: err}
			call.ch <- resp
			rs.fail(err)
			return
		}
		call.ch <- resp
	}
}

// readResponse decodes one response payload for the given opcode.
// A statusErr frame yields a response whose err wraps ErrWire; any
// other error is a transport failure. depth (0 when unknown) sizes the
// flat backing for batched path payloads.
func readResponse(r *bufio.Reader, op byte, depth int) (wireResponse, error) {
	status, err := r.ReadByte()
	if err != nil {
		return wireResponse{}, err
	}
	if status == statusErr {
		n, err := r.ReadByte()
		if err != nil {
			return wireResponse{}, err
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(r, msg); err != nil {
			return wireResponse{}, err
		}
		return wireResponse{err: fmt.Errorf("%w: remote: %s", ErrWire, msg)}, nil
	}
	var resp wireResponse
	switch op {
	case opMeta:
		for i := range resp.meta {
			if resp.meta[i], err = readU64(r); err != nil {
				return wireResponse{}, err
			}
		}
	case opReadPath:
		buckets, err := readBuckets(r)
		if err != nil {
			return wireResponse{}, err
		}
		resp.paths = [][][]byte{buckets}
	case opReadPaths:
		count, err := readU64(r)
		if err != nil {
			return wireResponse{}, err
		}
		if count > maxWirePaths {
			return wireResponse{}, fmt.Errorf("%w: %d paths", ErrWire, count)
		}
		resp.paths = make([][][]byte, count)
		var flat [][]byte
		if depth > 0 {
			flat = make([][]byte, int(count)*depth)
		}
		for i := range resp.paths {
			var dst [][]byte
			if flat != nil {
				dst = flat[i*depth : (i+1)*depth]
			}
			if resp.paths[i], err = readBucketsInto(r, dst); err != nil {
				return wireResponse{}, err
			}
		}
	case opWritePath, opWritePaths:
		// no payload
	default:
		return wireResponse{}, fmt.Errorf("%w: opcode %d", ErrWire, op)
	}
	return resp, nil
}

// take removes and returns the pending call for id, if any.
func (rs *RemoteServer) take(id uint64) *pendingCall {
	rs.pmu.Lock()
	defer rs.pmu.Unlock()
	call := rs.pending[id]
	delete(rs.pending, id)
	return call
}

// fail poisons the connection and unblocks every in-flight caller.
func (rs *RemoteServer) fail(err error) {
	rs.pmu.Lock()
	if rs.broken == nil {
		rs.broken = err
	}
	calls := rs.pending
	rs.pending = make(map[uint64]*pendingCall)
	rs.pmu.Unlock()
	for _, call := range calls {
		call.ch <- wireResponse{err: fmt.Errorf("oram: connection failed: %w", err)}
	}
}

// roundTrip registers a pending call, writes one request frame, and
// waits for the matching response. The send lock is held only for the
// write — not across the link round trip — so concurrent callers keep
// multiple requests in flight on the one connection.
func (rs *RemoteServer) roundTrip(op byte, payload func(w *bufio.Writer) error) (wireResponse, error) {
	call := &pendingCall{op: op, ch: make(chan wireResponse, 1)}
	rs.pmu.Lock()
	if rs.broken != nil {
		err := rs.broken
		rs.pmu.Unlock()
		return wireResponse{}, err
	}
	rs.nextID++
	id := rs.nextID
	rs.pending[id] = call
	rs.pmu.Unlock()

	rs.wmu.Lock()
	err := writeU64(rs.w, id)
	if err == nil {
		err = rs.w.WriteByte(op)
	}
	if err == nil && payload != nil {
		err = payload(rs.w)
	}
	if err == nil {
		err = rs.w.Flush()
	}
	rs.wmu.Unlock()
	if err != nil {
		if rs.take(id) != nil {
			return wireResponse{}, err
		}
		// The read loop already delivered a failure for this call.
	}

	resp := <-call.ch
	if resp.err != nil {
		return wireResponse{}, resp.err
	}
	return resp, nil
}

// ReadPath implements Server.
func (rs *RemoteServer) ReadPath(leaf uint64) ([][]byte, error) {
	resp, err := rs.roundTrip(opReadPath, func(w *bufio.Writer) error {
		return writeU64(w, leaf)
	})
	if err != nil {
		return nil, err
	}
	return resp.paths[0], nil
}

// WritePath implements Server.
func (rs *RemoteServer) WritePath(leaf uint64, buckets [][]byte) error {
	_, err := rs.roundTrip(opWritePath, func(w *bufio.Writer) error {
		if err := writeU64(w, leaf); err != nil {
			return err
		}
		return writeBuckets(w, buckets)
	})
	return err
}

// ReadPaths implements Server: N paths for one link round trip.
func (rs *RemoteServer) ReadPaths(leaves []uint64) ([][][]byte, error) {
	if len(leaves) == 0 {
		return nil, nil
	}
	if len(leaves) > maxWirePaths {
		return nil, fmt.Errorf("%w: %d paths exceeds batch limit %d", ErrWire, len(leaves), maxWirePaths)
	}
	resp, err := rs.roundTrip(opReadPaths, func(w *bufio.Writer) error {
		if err := writeU64(w, uint64(len(leaves))); err != nil {
			return err
		}
		for _, leaf := range leaves {
			if err := writeU64(w, leaf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(resp.paths) != len(leaves) {
		return nil, fmt.Errorf("%w: got %d paths, want %d", ErrWire, len(resp.paths), len(leaves))
	}
	return resp.paths, nil
}

// WritePaths implements Server: N path writes for one link round trip.
func (rs *RemoteServer) WritePaths(leaves []uint64, paths [][][]byte) error {
	if len(paths) != len(leaves) {
		return fmt.Errorf("%w: %d paths for %d leaves", ErrWire, len(paths), len(leaves))
	}
	if len(leaves) == 0 {
		return nil
	}
	if len(leaves) > maxWirePaths {
		return fmt.Errorf("%w: %d paths exceeds batch limit %d", ErrWire, len(leaves), maxWirePaths)
	}
	_, err := rs.roundTrip(opWritePaths, func(w *bufio.Writer) error {
		if err := writeU64(w, uint64(len(leaves))); err != nil {
			return err
		}
		for i, leaf := range leaves {
			if err := writeU64(w, leaf); err != nil {
				return err
			}
			if err := writeBuckets(w, paths[i]); err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// --- wire helpers ---

// writeU64/readU64 move big-endian u64s byte-wise through the
// CONCRETE bufio types: passing a stack buffer to an io.Writer
// interface would force it to escape and allocate on every call, and
// these run once per bucket on the hot path.
func writeU64(w *bufio.Writer, v uint64) error {
	for shift := 56; shift >= 0; shift -= 8 {
		if err := w.WriteByte(byte(v >> shift)); err != nil {
			return err
		}
	}
	return nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var v uint64
	for i := 0; i < 8; i++ {
		b, err := r.ReadByte()
		if err != nil {
			if i > 0 && errors.Is(err, io.EOF) {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		v = v<<8 | uint64(b)
	}
	return v, nil
}

func readLeaves(r *bufio.Reader) ([]uint64, error) {
	count, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if count > maxWirePaths {
		return nil, fmt.Errorf("%w: %d paths", ErrWire, count)
	}
	leaves := make([]uint64, count)
	for i := range leaves {
		if leaves[i], err = readU64(r); err != nil {
			return nil, err
		}
	}
	return leaves, nil
}

func writeStatus(w *bufio.Writer, err error) error {
	if err := w.WriteByte(statusErr); err != nil {
		return err
	}
	msg := err.Error()
	if len(msg) > 255 {
		msg = msg[:255]
	}
	if err := w.WriteByte(byte(len(msg))); err != nil {
		return err
	}
	_, werr := w.WriteString(msg)
	return werr
}

func writeBuckets(w *bufio.Writer, buckets [][]byte) error {
	if err := writeU64(w, uint64(len(buckets))); err != nil {
		return err
	}
	for _, b := range buckets {
		if err := writeU64(w, uint64(len(b))); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func readBuckets(r *bufio.Reader) ([][]byte, error) {
	return readBucketsInto(r, nil)
}

// readBucketsInto reads one bucket list, decoding into dst when the
// wire count matches its length (batch requests carry many depth-sized
// lists; a flat caller-provided backing replaces one allocation per
// path). A nil or mismatched dst falls back to a fresh slice.
func readBucketsInto(r *bufio.Reader, dst [][]byte) ([][]byte, error) {
	count, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if count > 64 {
		return nil, fmt.Errorf("%w: %d buckets", ErrWire, count)
	}
	var out [][]byte
	if dst != nil && int(count) == len(dst) {
		out = dst
	} else {
		out = make([][]byte, count)
	}
	for i := range out {
		out[i] = nil
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		if n > maxWireBucket {
			return nil, fmt.Errorf("%w: bucket size %d", ErrWire, n)
		}
		if n == 0 {
			continue
		}
		// Sealed buckets fit the shared cipher pool; consumers recycle
		// them with putCipherBuf once decoded.
		var buf []byte
		if n <= cipherBufCap {
			buf = getCipherBuf()[:n]
		} else {
			buf = make([]byte, n)
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out[i] = buf
	}
	return out, nil
}

// recycleBuckets returns pool-sized bucket buffers to the cipher pool
// once their contents are fully consumed.
func recycleBuckets(buckets [][]byte) {
	for i, b := range buckets {
		if len(b) > 0 {
			putCipherBuf(b)
		}
		buckets[i] = nil
	}
}
