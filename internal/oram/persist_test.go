package oram

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileServerRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buckets.dat")
	srv, err := OpenFileServer(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([][]byte, srv.Depth())
	for l := range payload {
		payload[l] = bytes.Repeat([]byte{byte(l + 1)}, 80)
	}
	if err := srv.WritePath(3, payload); err != nil {
		t.Fatal(err)
	}
	back, err := srv.ReadPath(3)
	if err != nil {
		t.Fatal(err)
	}
	for l := range payload {
		if !bytes.Equal(back[l], payload[l]) {
			t.Fatalf("level %d: round trip mismatch", l)
		}
	}
	// A fresh tree's untouched paths come back as empty buckets.
	empty, err := srv.ReadPath(srv.Leaves() - 1)
	if err != nil {
		t.Fatal(err)
	}
	for l, b := range empty {
		// Levels shared with leaf 3's path hold data; the distinct tail
		// must be empty.
		if l >= 1 && len(b) != 0 && !bytes.Equal(b, payload[l]) {
			t.Fatalf("level %d: unexpected bucket content", l)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the bucket store is durable.
	srv2, err := OpenFileServer(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	back, err = srv2.ReadPath(3)
	if err != nil {
		t.Fatal(err)
	}
	for l := range payload {
		if !bytes.Equal(back[l], payload[l]) {
			t.Fatalf("level %d lost across reopen", l)
		}
	}
	// Reopening under a different geometry is rejected, not reinterpreted.
	srv2.Close()
	if _, err := OpenFileServer(path, 4096); !errors.Is(err, ErrCapacity) {
		t.Fatalf("geometry mismatch: %v, want ErrCapacity", err)
	}
}

func TestFileServerBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buckets.dat")
	srv, err := OpenFileServer(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileServer(path, 64); !errors.Is(err, ErrTampered) {
		t.Fatalf("bad magic: %v, want ErrTampered", err)
	}
}

// recoveryRound builds round r of the deterministic recovery workload:
// a mixed batch whose content is a pure function of (r, i), so two runs
// that execute the same rounds must return the same bytes.
func recoveryRound(r int) []BatchOp {
	ops := make([]BatchOp, 8)
	rng := uint64(r)*2654435761 + 17
	next := func() uint64 { rng = rng*6364136223846793005 + 1; return rng >> 33 }
	for i := range ops {
		id := BlockID(next() % 48)
		if (int(next())+i)%2 == 0 {
			ops[i] = BatchOp{Op: OpWrite, ID: id,
				Data: []byte(fmt.Sprintf("round-%03d-op-%d-block-%d", r, i, id))}
		} else {
			ops[i] = BatchOp{Op: OpRead, ID: id}
		}
	}
	return ops
}

// runRecoveryRounds executes rounds [from, to) and appends every
// returned value (reads AND write echoes, nil as a marker) to trace.
func runRecoveryRounds(t *testing.T, cli *ShardedClient, from, to int, trace *strings.Builder) {
	t.Helper()
	for r := from; r < to; r++ {
		out, err := cli.AccessBatch(recoveryRound(r))
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i, v := range out {
			if v == nil {
				fmt.Fprintf(trace, "r%d.%d:nil;", r, i)
				continue
			}
			fmt.Fprintf(trace, "r%d.%d:%q;", r, i, bytes.TrimRight(v, "\x00"))
		}
	}
}

// TestShardedStoreRecoveryMidWorkload is the crash-recovery contract:
// a device killed mid-workload and reopened over the same directory
// resumes at the last checkpoint and RETURNS THE SAME BYTES as an
// uninterrupted run. (The adversary-visible leaf sequences differ — the
// recovered client draws fresh uniform remaps, which is exactly what
// obliviousness wants — but the data trace is byte-identical.)
func TestShardedStoreRecoveryMidWorkload(t *testing.T) {
	const (
		shards   = 4
		capacity = 256
		rounds   = 24
		killAt   = 13
	)
	key := testKey()

	// Uninterrupted control run.
	var control strings.Builder
	ctl, err := OpenShardedStore(filepath.Join(t.TempDir(), "ctl"), shards, capacity, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	runRecoveryRounds(t, ctl, 0, rounds, &control)
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashed run: same workload, killed after round killAt's checkpoint
	// (ckptEvery=1 publishes after every batch) by abandoning the client
	// without Close, then reopened over the same directory.
	dir := filepath.Join(t.TempDir(), "crash")
	var crashed strings.Builder
	first, err := OpenShardedStore(dir, shards, capacity, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	runRecoveryRounds(t, first, 0, killAt, &crashed)
	// No Close, no final Sync: the kill. Everything up to the last
	// published checkpoint is on disk by construction.

	second, err := OpenShardedStore(dir, shards, capacity, key, 1)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer second.Close()
	for i, cs := range second.stores {
		if cs.Epoch() != killAt {
			t.Fatalf("shard %d recovered at epoch %d, want %d", i, cs.Epoch(), killAt)
		}
	}
	runRecoveryRounds(t, second, killAt, rounds, &crashed)

	if control.String() != crashed.String() {
		t.Fatalf("recovered trace diverges from uninterrupted run:\ncontrol: %.300s\ncrashed: %.300s",
			control.String(), crashed.String())
	}
}

// TestShardedStoreCorruptCheckpoint: a flipped byte in a published
// snapshot, a swapped slot file, or a mangled manifest must all surface
// as ErrTampered on reopen — never as silent state loss.
func TestShardedStoreCorruptCheckpoint(t *testing.T) {
	key := testKey()
	seed := func(t *testing.T) string {
		dir := t.TempDir()
		cli, err := OpenShardedStore(dir, 2, 128, key, 1)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			if _, err := cli.AccessBatch(recoveryRound(r)); err != nil {
				t.Fatal(err)
			}
		}
		if err := cli.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("flipped-snapshot-byte", func(t *testing.T) {
		dir := seed(t)
		path := filepath.Join(dir, "shard-0", "state-1.ckpt")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x01
		if err := os.WriteFile(path, raw, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenShardedStore(dir, 2, 128, key, 1); !errors.Is(err, ErrTampered) {
			t.Fatalf("corrupt snapshot: %v, want ErrTampered", err)
		}
	})

	t.Run("replayed-old-snapshot", func(t *testing.T) {
		dir := seed(t)
		// 3 epochs published; the manifest names epoch 3 (slot 1). Replay
		// epoch 2's snapshot (slot 0) into slot 1: authentic bytes, wrong
		// epoch — the AD binding must reject it.
		shard := filepath.Join(dir, "shard-0")
		old, err := os.ReadFile(filepath.Join(shard, "state-0.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shard, "state-1.ckpt"), old, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenShardedStore(dir, 2, 128, key, 1); !errors.Is(err, ErrTampered) {
			t.Fatalf("replayed snapshot: %v, want ErrTampered", err)
		}
	})

	t.Run("mangled-manifest", func(t *testing.T) {
		dir := seed(t)
		if err := os.WriteFile(filepath.Join(dir, "shard-1", manifestName), []byte("garbage"), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenShardedStore(dir, 2, 128, key, 1); !errors.Is(err, ErrTampered) {
			t.Fatalf("mangled manifest: %v, want ErrTampered", err)
		}
	})

	t.Run("missing-snapshot", func(t *testing.T) {
		dir := seed(t)
		if err := os.Remove(filepath.Join(dir, "shard-0", "state-1.ckpt")); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenShardedStore(dir, 2, 128, key, 1); !errors.Is(err, ErrTampered) {
			t.Fatalf("missing snapshot: %v, want ErrTampered", err)
		}
	})
}

// TestShardedStoreCorruptBucketFile: bit rot in the on-disk bucket
// store is caught by bucket authentication on the next path read.
func TestShardedStoreCorruptBucketFile(t *testing.T) {
	key := testKey()
	dir := t.TempDir()
	cli, err := OpenShardedStore(dir, 1, 128, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	const id = BlockID(3)
	if err := cli.Write(id, []byte("bit-rot target")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one ciphertext byte in every stored record (skip the header
	// and each record's length prefix).
	path := filepath.Join(dir, "shard-0", "buckets.dat")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := fileHeaderSize; off+4 < len(raw); off += fileSlotSize {
		ln := int(uint32(raw[off])<<24 | uint32(raw[off+1])<<16 | uint32(raw[off+2])<<8 | uint32(raw[off+3]))
		if ln > 0 && off+4+ln <= len(raw) {
			raw[off+4+ln/2] ^= 0x01
		}
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	cli2, err := OpenShardedStore(dir, 1, 128, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.Read(id); !errors.Is(err, ErrTampered) {
		t.Fatalf("corrupt bucket file read: %v, want ErrTampered", err)
	}
}

// TestShardedStoreSingleShard: K=1 durability is just a persistent
// single tree — the degenerate configuration must work.
func TestShardedStoreSingleShard(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	cli, err := OpenShardedStore(dir, 1, 64, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(1, []byte("single")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	cli2, err := OpenShardedStore(dir, 1, 64, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	got, err := cli2.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:6]) != "single" {
		t.Fatal("persisted block lost")
	}
}
