package oram

import (
	"encoding/binary"
	"fmt"
)

// PositionMap maps block ids to their current leaf assignment.
type PositionMap interface {
	// Get returns the leaf for id, or false if the id was never set.
	Get(id BlockID) (uint64, bool)
	// Set records id's new leaf.
	Set(id BlockID, leaf uint64)
}

// FlatPositionMap is the simple on-chip map (the paper keeps the
// highest-level position map on-chip, §IV-D).
type FlatPositionMap struct {
	m      map[BlockID]uint64
	leaves uint64
}

var _ PositionMap = (*FlatPositionMap)(nil)

// NewFlatPositionMap returns an empty map for a tree with the given
// leaf count.
func NewFlatPositionMap(leaves uint64) *FlatPositionMap {
	return &FlatPositionMap{m: make(map[BlockID]uint64), leaves: leaves}
}

// Get implements PositionMap.
func (p *FlatPositionMap) Get(id BlockID) (uint64, bool) {
	leaf, ok := p.m[id]
	return leaf, ok
}

// Set implements PositionMap.
func (p *FlatPositionMap) Set(id BlockID, leaf uint64) {
	p.m[id] = leaf
}

// Len returns the number of tracked blocks.
func (p *FlatPositionMap) Len() int { return len(p.m) }

// entriesPerPosBlock is how many 8-byte positions fit one ORAM block.
const entriesPerPosBlock = BlockSize / 8

// unsetLeaf marks a never-assigned position inside a packed block.
const unsetLeaf = ^uint64(0)

// RecursivePositionMap stores positions in a smaller parent ORAM, the
// paper's "stored in higher-level ORAMs recursively" extension. Each
// parent block packs 128 positions; the parent's own (much smaller)
// position map is flat and on-chip.
type RecursivePositionMap struct {
	parent *Client
	// cache avoids a parent round trip for repeated Get/Set of the
	// same packed block within one access (Get followed by Set).
	lastIdx  BlockID
	lastData []byte
	valid    bool
}

var _ PositionMap = (*RecursivePositionMap)(nil)

// NewRecursivePositionMap builds a position map for `capacity` data
// blocks, backed by a dedicated parent ORAM (with its own key).
func NewRecursivePositionMap(capacity uint64, key []byte) (*RecursivePositionMap, error) {
	posBlocks := (capacity + entriesPerPosBlock - 1) / entriesPerPosBlock
	if posBlocks < 2 {
		posBlocks = 2
	}
	server, err := NewMemServer(posBlocks)
	if err != nil {
		return nil, fmt.Errorf("oram: recursive posmap: %w", err)
	}
	parent, err := NewClient(server, key)
	if err != nil {
		return nil, fmt.Errorf("oram: recursive posmap: %w", err)
	}
	return &RecursivePositionMap{parent: parent}, nil
}

// load fetches (or initializes) the packed block holding id.
func (p *RecursivePositionMap) load(packed BlockID) ([]byte, error) {
	if p.valid && p.lastIdx == packed {
		return p.lastData, nil
	}
	data, err := p.parent.Read(packed)
	if err == ErrNotFound {
		data = make([]byte, BlockSize)
		for i := 0; i < entriesPerPosBlock; i++ {
			binary.BigEndian.PutUint64(data[i*8:], unsetLeaf)
		}
	} else if err != nil {
		return nil, err
	}
	p.lastIdx, p.lastData, p.valid = packed, data, true
	return data, nil
}

// Get implements PositionMap. Parent ORAM failures surface as "unset",
// which the client handles by assigning a fresh random leaf; the
// failure mode is loss of a mapping, never loss of obliviousness.
func (p *RecursivePositionMap) Get(id BlockID) (uint64, bool) {
	packed := id / entriesPerPosBlock
	data, err := p.load(packed)
	if err != nil {
		return 0, false
	}
	leaf := binary.BigEndian.Uint64(data[(id%entriesPerPosBlock)*8:])
	if leaf == unsetLeaf {
		return 0, false
	}
	return leaf, true
}

// Set implements PositionMap.
func (p *RecursivePositionMap) Set(id BlockID, leaf uint64) {
	packed := id / entriesPerPosBlock
	data, err := p.load(packed)
	if err != nil {
		return
	}
	binary.BigEndian.PutUint64(data[(id%entriesPerPosBlock)*8:], leaf)
	// Write back through the parent ORAM.
	if err := p.parent.Write(packed, data); err != nil {
		p.valid = false
		return
	}
	p.lastIdx, p.lastData, p.valid = packed, data, true
}

// ParentStats exposes the parent ORAM's counters (tests/diagnostics).
func (p *RecursivePositionMap) ParentStats() Stats {
	return p.parent.Stats()
}
