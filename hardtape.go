// Package hardtape is the public API of the HarDTAPE reproduction: a
// hardware-dedicated trusted transaction pre-executor (He et al.,
// ICDCS 2025) built as a software simulation.
//
// A HarDTAPE deployment has four parties (paper §III-A):
//
//   - the Manufacturer provisions devices and anchors the chain of
//     trust ([NewManufacturer]);
//   - the Service Provider runs a [Device] (HEVM cores + Hypervisor)
//     and the untrusted ORAM server, exposed as a [Service];
//   - an Ethereum [Node] supplies Merkle-proof-authenticated world
//     state;
//   - the user connects with [Dial], verifies remote attestation, and
//     submits transaction [Bundle]s for confidential pre-execution.
//
// The quickstart in examples/quickstart wires all four in-process;
// cmd/hardtape and cmd/hardtape-client run them across TCP.
package hardtape

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"fmt"
	"io"

	"hardtape/internal/attest"
	"hardtape/internal/core"
	"hardtape/internal/fleet"
	"hardtape/internal/node"
	"hardtape/internal/session"
	"hardtape/internal/state"
	"hardtape/internal/telemetry"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// Re-exported core types. These aliases are the supported surface; the
// internal packages may change without notice.
type (
	// Device is one HarDTAPE chip: Hypervisor + dedicated HEVM cores.
	Device = core.Device
	// Service exposes a Device over the authenticated message protocol.
	Service = core.Service
	// Client is the user side: attestation, secure channel, bundles.
	Client = core.Client
	// Config sizes a device; Features picks the Fig. 4 configuration.
	Config   = core.Config
	Features = core.Features
	// BundleResult is a completed pre-execution (trace + virtual time).
	BundleResult = core.BundleResult
	// TraceResult is the client-side response for one bundle.
	TraceResult = core.TraceResult

	// Node is the simulated Ethereum full node.
	Node = node.Node
	// Manufacturer provisions trusted devices.
	Manufacturer = attest.Manufacturer
	// Verifier checks remote attestation reports on the user side.
	Verifier = attest.Verifier

	// Bundle is an ordered transaction sequence to pre-execute.
	Bundle = types.Bundle
	// Transaction is a signed Ethereum transaction.
	Transaction = types.Transaction
	// Address and Hash are the Ethereum primitive identifiers.
	Address = types.Address
	Hash    = types.Hash

	// World is the synthetic evaluation world (workload generator).
	World = workload.World

	// Gateway fronts a fleet of devices: bounded admission, least-busy
	// dispatch, health-checked failover.
	Gateway = fleet.Gateway
	// FleetConfig tunes the gateway; FleetStats is its live snapshot.
	FleetConfig = fleet.Config
	FleetStats  = fleet.Stats
	// Backend is one execution target behind a gateway.
	Backend = fleet.Backend
	// LocalBackend adapts an in-process Device; RemoteBackend fronts a
	// Service endpoint over TCP.
	LocalBackend  = fleet.LocalBackend
	RemoteBackend = fleet.RemoteBackend

	// Telemetry is the opt-in metrics registry threaded through the
	// pipeline; AdminServer serves it over HTTP (Prometheus text, JSON
	// snapshot, pprof, and — with tracing enabled — /traces).
	Telemetry   = telemetry.Registry
	AdminServer = telemetry.AdminServer

	// Tracer mints distributed-tracing spans (Telemetry.EnableTracing);
	// FlightRecorder is the tail-sampling ring completed traces land
	// in; TraceID identifies one end-to-end trace across processes.
	Tracer         = telemetry.Tracer
	FlightRecorder = telemetry.Recorder
	TraceID        = telemetry.TraceID
	// Trace is one assembled trace as kept by the flight recorder.
	Trace = telemetry.Trace

	// SessionTicket is a resumption ticket: the opaque service-sealed
	// state plus the locally derived PSK. Present it to Resume to skip
	// the ~80 ms asymmetric handshake; tickets are single-use and every
	// session (cold or warm) mints a successor, via Client.Ticket.
	SessionTicket = session.ClientTicket
	// VerdictCache remembers verified attestation verdicts per device
	// identity + image measurement, with epoch expiry and an explicit
	// revocation list.
	VerdictCache = session.VerdictCache
	// CachingVerifier wraps a Verifier with a VerdictCache so repeat
	// cold dials skip the manufacturer-chain ECDSA verify.
	CachingVerifier = session.CachingVerifier
	// ReportVerifier is the user-side attestation contract Dial accepts:
	// *Verifier or *CachingVerifier.
	ReportVerifier = core.ReportVerifier
	// Admission bounds concurrent cold handshakes on a Service; warm
	// resumes bypass it.
	Admission = session.Admission
)

// Fleet gateway errors.
var (
	// ErrOverloaded rejects submissions when the admission queue is full.
	ErrOverloaded = fleet.ErrOverloaded
	// ErrNoBackends means every backend is down.
	ErrNoBackends = fleet.ErrNoBackends
)

// Session-resumption errors. Every adversarial resume path fails
// closed with one of these typed sentinels.
var (
	ErrTicketTampered     = session.ErrTicketTampered
	ErrTicketExpired      = session.ErrTicketExpired
	ErrTicketReplayed     = session.ErrTicketReplayed
	ErrMeasurementChanged = session.ErrMeasurementChanged
	ErrDeviceRevoked      = session.ErrDeviceRevoked
	ErrResumeRejected     = session.ErrResumeRejected
)

// The paper's named feature configurations (Fig. 4).
var (
	ConfigRaw  = core.ConfigRaw
	ConfigE    = core.ConfigE
	ConfigES   = core.ConfigES
	ConfigESO  = core.ConfigESO
	ConfigFull = core.ConfigFull
)

// DefaultConfig mirrors the paper's prototype (3 HEVMs, 1 MB L2,
// 2 ms ORAM RTT, -full features).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewTelemetry creates a metrics registry. Pass it via
// TestbedOptions.Telemetry (or Config.Telemetry / FleetConfig.Telemetry)
// to enable instrumentation; leave nil for the zero-overhead default.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// StartAdmin serves a registry's admin endpoint (/metrics,
// /metrics.json, /healthz, /debug/pprof) on addr until Close.
func StartAdmin(addr string, reg *Telemetry) (*AdminServer, error) {
	return telemetry.StartAdmin(addr, reg)
}

// NewManufacturer creates a trusted device manufacturer.
func NewManufacturer() (*Manufacturer, error) { return attest.NewManufacturer() }

// NewNode wraps a canonical world state as a full node.
func NewNode(genesis *state.WorldState) (*Node, error) { return node.New(genesis) }

// NewDevice provisions and boots a HarDTAPE device attached to a node.
// Pass a nil manufacturer to provision one internally (single-party
// tests); production users share one Manufacturer and pin its key.
func NewDevice(cfg Config, mfr *Manufacturer, chain *Node) (*Device, error) {
	return core.NewDevice(cfg, mfr, chain)
}

// NewService exposes a device over the message protocol.
func NewService(dev *Device) *Service { return core.NewService(dev) }

// NewFleetService exposes a whole gateway over the message protocol,
// using the attestation identity of one of its devices (the gateway
// runs inside the trusted boundary — see DESIGN.md "Fleet deployment").
// The gateway's cold-handshake admission gate, when configured
// (FleetConfig.ColdHandshakeLimit), is wired into the service so warm
// resumes never queue behind cold attestations.
func NewFleetService(g *Gateway, identity *Device, sign bool) *Service {
	s := core.NewServiceFor(g, identity.Booted(), sign)
	s.SetAdmission(g.SessionAdmission())
	return s
}

// DefaultFleetConfig returns production-ish gateway settings.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// NewGateway wires backends behind a gateway and starts its health
// monitor.
func NewGateway(cfg FleetConfig, backends ...Backend) *Gateway {
	return fleet.NewGateway(cfg, backends...)
}

// NewLocalBackend adapts an in-process device for a gateway.
func NewLocalBackend(name string, dev *Device) *LocalBackend {
	return fleet.NewLocalBackend(name, dev)
}

// NewRemoteBackend fronts the service at addr with the given parallel
// session count; sign must match the service's Features.Sign.
func NewRemoteBackend(name, addr string, verifier *Verifier, sign bool, sessions int) *RemoteBackend {
	return fleet.NewRemoteBackend(name, addr, verifier, sign, sessions)
}

// NewVerifier builds the user-side attestation verifier pinning the
// manufacturer's public key and the expected Hypervisor measurement.
func NewVerifier(mfr *Manufacturer) *Verifier {
	return attest.NewVerifier(mfr.PublicKey(), core.ImageMeasurement())
}

// NewVerifierForKey builds a verifier from a marshaled (uncompressed
// P-256) manufacturer public key, as distributed out of band to users.
func NewVerifierForKey(raw []byte) (*Verifier, error) {
	x, y := elliptic.Unmarshal(elliptic.P256(), raw)
	if x == nil {
		return nil, fmt.Errorf("hardtape: invalid manufacturer key")
	}
	pub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	return attest.NewVerifier(pub, core.ImageMeasurement()), nil
}

// Dial attests a service over a stream and opens the secure channel.
// sign must match the service's Features.Sign. The verifier may be a
// plain *Verifier or a *CachingVerifier. The returned client carries a
// resumption ticket (Client.Ticket) for later warm reconnects.
func Dial(conn io.ReadWriter, verifier ReportVerifier, sign bool) (*Client, error) {
	return core.Dial(conn, verifier, sign)
}

// Resume re-establishes a session from a ticket with zero asymmetric
// crypto: ticket redemption plus an AES-GCM rekey, microseconds
// instead of the ~80 ms cold handshake. The ticket is consumed either
// way; on a typed failure (ErrTicket*, ErrMeasurementChanged) fall
// back to a cold Dial on a fresh connection.
func Resume(conn io.ReadWriter, ticket *SessionTicket) (*Client, error) {
	return core.Resume(conn, ticket)
}

// NewVerdictCache builds an attestation-verdict cache with the default
// TTL, for wiring into a CachingVerifier.
func NewVerdictCache() *VerdictCache {
	return session.NewVerdictCache(nil, 0)
}

// Testbed is a fully wired single-process deployment: synthetic world,
// node, manufacturer, and a synced device — the fastest way to try the
// library (and what the examples build on).
type Testbed struct {
	World        *World
	Chain        *Node
	Manufacturer *Manufacturer
	Device       *Device
}

// TestbedOptions size a testbed.
type TestbedOptions struct {
	Seed     int64
	EOAs     int
	Tokens   int
	DEXes    int
	Features Features
	HEVMs    int
	// Lanes enables optimistic intra-bundle parallelism: N > 1 runs
	// each bundle's transactions speculatively on N lanes per HEVM with
	// in-order commit (DESIGN.md §16); 0 or 1 executes sequentially.
	Lanes int
	// Shards partitions the ORAM across N independent trees with
	// shard-aware batched fan-out (DESIGN.md §17); 0 or 1 keeps the
	// paper's single tree.
	Shards int
	// Telemetry, when non-nil, instruments the testbed's device(s) —
	// and, for fleet testbeds, the gateway — on this registry.
	Telemetry *Telemetry
}

// DefaultTestbedOptions returns a laptop-scale -full testbed.
func DefaultTestbedOptions() TestbedOptions {
	return TestbedOptions{
		Seed: 19145194, EOAs: 16, Tokens: 3, DEXes: 2,
		Features: ConfigFull, HEVMs: 3,
	}
}

// NewTestbed builds and syncs a testbed.
func NewTestbed(opts TestbedOptions) (*Testbed, error) {
	world, err := workload.BuildWorld(workload.Config{
		Seed: opts.Seed, EOAs: opts.EOAs, Tokens: opts.Tokens, DEXes: opts.DEXes,
	})
	if err != nil {
		return nil, fmt.Errorf("hardtape: build world: %w", err)
	}
	chain, err := node.New(world.State)
	if err != nil {
		return nil, fmt.Errorf("hardtape: node: %w", err)
	}
	mfr, err := attest.NewManufacturer()
	if err != nil {
		return nil, fmt.Errorf("hardtape: manufacturer: %w", err)
	}
	cfg := core.DefaultConfig()
	cfg.Features = opts.Features
	if opts.HEVMs > 0 {
		cfg.HEVMs = opts.HEVMs
	}
	cfg.Lanes = opts.Lanes
	cfg.ORAMShards = opts.Shards
	cfg.Telemetry = opts.Telemetry
	dev, err := core.NewDevice(cfg, mfr, chain)
	if err != nil {
		return nil, fmt.Errorf("hardtape: device: %w", err)
	}
	if err := dev.Sync(); err != nil {
		return nil, fmt.Errorf("hardtape: sync: %w", err)
	}
	return &Testbed{World: world, Chain: chain, Manufacturer: mfr, Device: dev}, nil
}

// Verifier returns the attestation verifier for this testbed's
// manufacturer.
func (tb *Testbed) Verifier() *Verifier {
	return NewVerifier(tb.Manufacturer)
}

// FleetTestbed is a multi-device single-process deployment: one
// synthetic world and node, one manufacturer, n synced devices pooled
// behind a running Gateway.
type FleetTestbed struct {
	World        *World
	Chain        *Node
	Manufacturer *Manufacturer
	Devices      []*Device
	// Backends are the gateway's local adapters, in device order —
	// exposed so tests and demos can Kill/Revive individual devices.
	Backends []*LocalBackend
	Gateway  *Gateway
}

// NewFleetTestbed builds n devices over one world and wires them
// behind a gateway (backends are named "dev-0" … "dev-n-1").
func NewFleetTestbed(opts TestbedOptions, n int, fcfg FleetConfig) (*FleetTestbed, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hardtape: fleet needs at least one device, got %d", n)
	}
	world, err := workload.BuildWorld(workload.Config{
		Seed: opts.Seed, EOAs: opts.EOAs, Tokens: opts.Tokens, DEXes: opts.DEXes,
	})
	if err != nil {
		return nil, fmt.Errorf("hardtape: build world: %w", err)
	}
	chain, err := node.New(world.State)
	if err != nil {
		return nil, fmt.Errorf("hardtape: node: %w", err)
	}
	mfr, err := attest.NewManufacturer()
	if err != nil {
		return nil, fmt.Errorf("hardtape: manufacturer: %w", err)
	}
	ftb := &FleetTestbed{World: world, Chain: chain, Manufacturer: mfr}
	backends := make([]Backend, 0, n)
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig()
		cfg.Features = opts.Features
		if opts.HEVMs > 0 {
			cfg.HEVMs = opts.HEVMs
		}
		cfg.Lanes = opts.Lanes
		cfg.ORAMShards = opts.Shards
		cfg.Telemetry = opts.Telemetry
		cfg.NoiseSeed = int64(i + 1)
		dev, err := core.NewDevice(cfg, mfr, chain)
		if err != nil {
			return nil, fmt.Errorf("hardtape: device %d: %w", i, err)
		}
		if err := dev.Sync(); err != nil {
			return nil, fmt.Errorf("hardtape: sync %d: %w", i, err)
		}
		ftb.Devices = append(ftb.Devices, dev)
		lb := fleet.NewLocalBackend(fmt.Sprintf("dev-%d", i), dev)
		ftb.Backends = append(ftb.Backends, lb)
		backends = append(backends, lb)
	}
	if fcfg.Telemetry == nil {
		fcfg.Telemetry = opts.Telemetry
	}
	ftb.Gateway = fleet.NewGateway(fcfg, backends...)
	return ftb, nil
}

// Verifier returns the attestation verifier for this fleet's
// manufacturer.
func (ftb *FleetTestbed) Verifier() *Verifier {
	return NewVerifier(ftb.Manufacturer)
}
