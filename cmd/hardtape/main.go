// Command hardtape runs the service provider side: a synthetic world
// and node, one HarDTAPE device, and the pre-execution service on a
// TCP listener.
//
//	hardtape -addr :7337 -config full -credentials mfr.pub
//
// The manufacturer's public key is written to the credentials file;
// distribute it to clients out of band (cmd/hardtape-client reads it).
// The demo world is deterministic in -seed, so a client with the same
// seed can construct valid signed transactions against it.
package main

import (
	"crypto/elliptic"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"

	"hardtape"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hardtape: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:7337", "listen address")
		cfgName = flag.String("config", "full", "feature set: raw|e|es|eso|full")
		hevms   = flag.Int("hevms", 3, "HEVM cores")
		lanes   = flag.Int("lanes", 0, "speculative lanes per HEVM (>1 enables optimistic parallel pre-execution)")
		shards  = flag.Int("shards", 0, "ORAM shard count (>1 partitions the tree with shard-aware batched fan-out)")
		seed    = flag.Int64("seed", 19145194, "world seed")
		eoas    = flag.Int("eoas", 16, "synthetic EOAs")
		tokens  = flag.Int("tokens", 3, "ERC-20 tokens")
		dexes   = flag.Int("dexes", 2, "DEX pools")
		credOut = flag.String("credentials", "mfr.pub", "file to write the manufacturer public key")
		admin   = flag.String("admin", "", "admin endpoint address (e.g. 127.0.0.1:7338); empty disables telemetry")
		traceOn = flag.Bool("trace", false, "enable distributed tracing with the tail-sampling flight recorder (requires -admin; browse /traces)")
	)
	flag.Parse()

	features, err := parseFeatures(*cfgName)
	if err != nil {
		return err
	}

	opts := hardtape.DefaultTestbedOptions()
	opts.Seed = *seed
	opts.EOAs = *eoas
	opts.Tokens = *tokens
	opts.DEXes = *dexes
	opts.Features = features
	opts.HEVMs = *hevms
	opts.Lanes = *lanes
	opts.Shards = *shards

	// Telemetry is opt-in: without -admin the pipeline runs with nil
	// instruments (one branch per record site, zero allocations).
	var reg *hardtape.Telemetry
	if *admin != "" {
		reg = hardtape.NewTelemetry()
		opts.Telemetry = reg
	}
	if *traceOn {
		if reg == nil {
			return fmt.Errorf("-trace requires -admin (traces are served on the admin endpoint)")
		}
		reg.EnableTracing("device", 0)
	}

	fmt.Printf("Provisioning device and syncing world state (seed %d)...\n", *seed)
	tb, err := hardtape.NewTestbed(opts)
	if err != nil {
		return err
	}

	// Publish the root of trust.
	pub := tb.Manufacturer.PublicKey()
	raw := elliptic.Marshal(elliptic.P256(), pub.X, pub.Y)
	if err := os.WriteFile(*credOut, []byte(hex.EncodeToString(raw)+"\n"), 0o644); err != nil {
		return fmt.Errorf("write credentials: %w", err)
	}
	fmt.Printf("Manufacturer credential written to %s\n", *credOut)

	if reg != nil {
		a, err := hardtape.StartAdmin(*admin, reg)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer a.Close()
		fmt.Printf("Admin endpoint (metrics, pprof) on http://%s\n", a.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	laneNote := ""
	if *lanes > 1 {
		laneNote = fmt.Sprintf(", %d lanes", *lanes)
	}
	if *shards > 1 {
		laneNote += fmt.Sprintf(", %d ORAM shards", *shards)
	}
	fmt.Printf("HarDTAPE service (%s, %d HEVMs%s) listening on %s\n",
		features.Name(), *hevms, laneNote, l.Addr())
	svc := hardtape.NewService(tb.Device)
	if reg != nil {
		// The service records wire metrics and, with -trace, starts
		// "service.bundle" spans that parent the device's under the
		// caller's propagated context.
		svc.SetTelemetry(reg)
	}
	return svc.ServeListener(l)
}

func parseFeatures(name string) (hardtape.Features, error) {
	switch name {
	case "raw":
		return hardtape.ConfigRaw, nil
	case "e":
		return hardtape.ConfigE, nil
	case "es":
		return hardtape.ConfigES, nil
	case "eso":
		return hardtape.ConfigESO, nil
	case "full":
		return hardtape.ConfigFull, nil
	default:
		return hardtape.Features{}, fmt.Errorf("unknown config %q (raw|e|es|eso|full)", name)
	}
}
