// Command hardtape-gateway runs the fleet front-end: a pool of
// in-process HarDTAPE devices (plus optional remote hardtape services)
// behind a scheduling gateway, exposed to users over the same
// attested protocol a single device speaks.
//
//	hardtape-gateway -addr :7440 -devices 3 -hevms 3 -config full
//
// Remote devices (other `hardtape` processes) join the pool with
// -backend, attested against their manufacturer credential:
//
//	hardtape-gateway -backend 10.0.0.2:7337,10.0.0.3:7337 \
//	    -backend-credentials mfr.pub -backend-sessions 3
//
// The gateway terminates user secure channels with the identity of
// its first local device and dispatches each bundle to the
// least-loaded healthy backend; killed backends are drained, probed
// with exponential backoff, and re-admitted when they recover. The
// client side is unchanged: point cmd/hardtape-client at the gateway.
package main

import (
	"crypto/elliptic"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"hardtape"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hardtape-gateway: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:7440", "listen address")
		cfgName = flag.String("config", "full", "feature set: raw|e|es|eso|full")
		devices = flag.Int("devices", 3, "in-process devices in the pool")
		hevms   = flag.Int("hevms", 3, "HEVM cores per device")
		lanes   = flag.Int("lanes", 0, "speculative lanes per HEVM (>1 enables optimistic parallel pre-execution)")
		shards  = flag.Int("shards", 0, "ORAM shard count (>1 partitions the tree with shard-aware batched fan-out)")
		seed    = flag.Int64("seed", 19145194, "world seed")
		eoas    = flag.Int("eoas", 16, "synthetic EOAs")
		tokens  = flag.Int("tokens", 3, "ERC-20 tokens")
		dexes   = flag.Int("dexes", 2, "DEX pools")
		credOut = flag.String("credentials", "mfr.pub", "file to write the manufacturer public key")

		queueDepth = flag.Int("queue", 0, "admission queue depth (0 = 2x fleet capacity)")
		deadline   = flag.Duration("deadline", 10*time.Second, "per-bundle deadline (0 = none)")
		healthInt  = flag.Duration("health-interval", 100*time.Millisecond, "healthy-backend probe cadence")

		remotes    = flag.String("backend", "", "comma-separated remote hardtape service addresses to pool")
		remoteCred = flag.String("backend-credentials", "", "manufacturer credential file for remote backends")
		remoteSess = flag.Int("backend-sessions", 3, "parallel sessions per remote backend")
		statsEvery = flag.Duration("stats", 10*time.Second, "fleet stats print interval (0 = off)")
		admin      = flag.String("admin", "", "admin endpoint address (e.g. 127.0.0.1:7441); empty disables telemetry")
		traceOn    = flag.Bool("trace", false, "enable distributed tracing with the tail-sampling flight recorder (requires -admin; browse /traces)")
	)
	flag.Parse()

	features, err := parseFeatures(*cfgName)
	if err != nil {
		return err
	}

	opts := hardtape.DefaultTestbedOptions()
	opts.Seed = *seed
	opts.EOAs = *eoas
	opts.Tokens = *tokens
	opts.DEXes = *dexes
	opts.Features = features
	opts.HEVMs = *hevms
	opts.Lanes = *lanes
	opts.Shards = *shards

	fcfg := hardtape.DefaultFleetConfig()
	fcfg.QueueDepth = *queueDepth
	fcfg.BundleDeadline = *deadline
	fcfg.HealthInterval = *healthInt

	// Telemetry is opt-in: without -admin devices and gateway run with
	// nil instruments (the gateway keeps a private registry for Stats).
	var reg *hardtape.Telemetry
	if *admin != "" {
		reg = hardtape.NewTelemetry()
		opts.Telemetry = reg
		fcfg.Telemetry = reg
	}
	if *traceOn {
		if reg == nil {
			return fmt.Errorf("-trace requires -admin (traces are served on the admin endpoint)")
		}
		// One tracer for the whole gateway process: service admission,
		// gateway scheduling, and local-device execution spans share it;
		// remote backends propagate the context over their sessions.
		reg.EnableTracing("gateway", 0)
	}

	fmt.Printf("Provisioning %d devices (%d HEVMs each) and syncing world state (seed %d)...\n",
		*devices, *hevms, *seed)
	ftb, err := hardtape.NewFleetTestbed(opts, *devices, fcfg)
	if err != nil {
		return err
	}
	gw := ftb.Gateway
	defer gw.Close()

	// Remote devices join the same pool, attested like any user would.
	if *remotes != "" {
		if *remoteCred == "" {
			return fmt.Errorf("-backend requires -backend-credentials")
		}
		verifier, err := verifierFromFile(*remoteCred)
		if err != nil {
			return err
		}
		// The gateway was already built; pooled remotes need their own
		// gateway instance including them, so rebuild with all backends.
		gw.Close()
		backends := make([]hardtape.Backend, 0, len(ftb.Backends)+4)
		for _, lb := range ftb.Backends {
			backends = append(backends, lb)
		}
		for i, raddr := range strings.Split(*remotes, ",") {
			raddr = strings.TrimSpace(raddr)
			if raddr == "" {
				continue
			}
			backends = append(backends, hardtape.NewRemoteBackend(
				fmt.Sprintf("remote-%d", i), raddr, verifier, features.Sign, *remoteSess))
			fmt.Printf("Pooling remote backend %s (%d sessions)\n", raddr, *remoteSess)
		}
		gw = hardtape.NewGateway(fcfg, backends...)
		defer gw.Close()
	}

	// Publish the root of trust for this gateway's own identity.
	pub := ftb.Manufacturer.PublicKey()
	raw := elliptic.Marshal(elliptic.P256(), pub.X, pub.Y)
	if err := os.WriteFile(*credOut, []byte(hex.EncodeToString(raw)+"\n"), 0o644); err != nil {
		return fmt.Errorf("write credentials: %w", err)
	}
	fmt.Printf("Manufacturer credential written to %s\n", *credOut)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				printStats(gw.Stats())
			}
		}()
	}

	if reg != nil {
		a, err := hardtape.StartAdmin(*admin, reg)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer a.Close()
		fmt.Printf("Admin endpoint (metrics, pprof) on http://%s\n", a.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("Fleet gateway (%s, %d slots) listening on %s\n",
		features.Name(), gw.SlotCount(), l.Addr())
	svc := hardtape.NewFleetService(gw, ftb.Devices[0], features.Sign)
	svc.SetTelemetry(reg)
	return svc.ServeListener(l)
}

func printStats(st hardtape.FleetStats) {
	fmt.Printf("[fleet] slots %d/%d free, waiting %d, in-flight %d | admitted %d rejected %d completed %d failed %d retries %d | queue wait p50 %v p99 %v\n",
		st.FreeSlots, st.Capacity, st.Waiting, st.InFlight,
		st.Admitted, st.Rejected, st.Completed, st.Failed, st.Retries,
		st.QueueWaitP50, st.QueueWaitP99)
	for _, b := range st.Backends {
		state := "up"
		if !b.Healthy {
			state = "DOWN"
		}
		fmt.Printf("[fleet]   %-10s %-4s free %d/%d, dispatched %d, failures %d %s\n",
			b.Name, state, b.FreeSlots, b.Capacity, b.Dispatched, b.Failures, b.LastError)
	}
}

func verifierFromFile(path string) (*hardtape.Verifier, error) {
	credHex, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read credentials: %w", err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(credHex)))
	if err != nil {
		return nil, fmt.Errorf("decode credentials: %w", err)
	}
	return hardtape.NewVerifierForKey(raw)
}

func parseFeatures(name string) (hardtape.Features, error) {
	switch name {
	case "raw":
		return hardtape.ConfigRaw, nil
	case "e":
		return hardtape.ConfigE, nil
	case "es":
		return hardtape.ConfigES, nil
	case "eso":
		return hardtape.ConfigESO, nil
	case "full":
		return hardtape.ConfigFull, nil
	default:
		return hardtape.Features{}, fmt.Errorf("unknown config %q (raw|e|es|eso|full)", name)
	}
}
