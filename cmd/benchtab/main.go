// Command benchtab regenerates every table and figure of the paper's
// evaluation section (§VI) from the software simulation:
//
//	benchtab -all
//	benchtab -fig4 -n 100
//	benchtab -table1 -correctness -scalability -resources
//	benchtab -all -json > results.json
//
// Virtual-clock timings use the calibration table in
// internal/simclock (see DESIGN.md); shapes, not absolute values, are
// the reproduction target.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"

	"hardtape"
	"hardtape/internal/bench"
	"hardtape/internal/hevm"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// jsonReport is the machine-readable form of a benchtab run. Sections
// not selected on the command line are omitted from the output.
type jsonReport struct {
	Seed         int64                     `json:"seed"`
	N            int                       `json:"n"`
	TableI       string                    `json:"table1,omitempty"`
	Resources    *bench.ResourceReport     `json:"resources,omitempty"`
	Correctness  *bench.CorrectnessReport  `json:"correctness,omitempty"`
	Fig4         []bench.Fig4Row           `json:"fig4,omitempty"`
	Fig5         []bench.Fig5Row           `json:"fig5,omitempty"`
	Amortization []bench.AmortizationRow   `json:"amortization,omitempty"`
	Scalability  *bench.ScalabilityReport  `json:"scalability,omitempty"`
	Interp       []bench.InterpRow         `json:"interp_fastpath,omitempty"`
	Ablations    *jsonAblations            `json:"ablations,omitempty"`
	Sessions     *bench.SessionsReport     `json:"sessions,omitempty"`
	SessionScale *bench.SessionScaleReport `json:"session_scale,omitempty"`
	Parallel     *bench.ParallelReport     `json:"parallel,omitempty"`
	ORAM         *bench.ORAMSweepReport    `json:"oram,omitempty"`
	Trace        *bench.TraceSweepReport   `json:"trace,omitempty"`
}

type jsonAblations struct {
	Noise    *bench.NoiseAblation    `json:"noise,omitempty"`
	Prefetch *bench.PrefetchAblation `json:"prefetch,omitempty"`
	Grouping *bench.GroupingAblation `json:"grouping,omitempty"`
	Depth    *bench.DepthAblation    `json:"depth,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all         = flag.Bool("all", false, "run every experiment")
		table1      = flag.Bool("table1", false, "Table I: workload distributions")
		fig4        = flag.Bool("fig4", false, "Fig. 4: end-to-end per-tx time by configuration")
		fig5        = flag.Bool("fig5", false, "Fig. 5: per-operation time, warm local data")
		correctness = flag.Bool("correctness", false, "§VI-B: trace vs ground truth")
		scalability = flag.Bool("scalability", false, "§VI-D: throughput and ORAM-server capacity")
		resources   = flag.Bool("resources", false, "§VI-A: resource utility audit")
		ablations   = flag.Bool("ablations", false, "design-choice ablations (noise, prefetch, grouping, ORAM depth)")
		interp      = flag.Bool("interp", false, "interpreter fast-path microbenchmarks + raw bundle throughput")
		sessions    = flag.Bool("sessions", false, "cold-dial vs ticket-resume sweep + gateway resume stampede")
		parallel    = flag.Bool("parallel", false, "intra-bundle parallel pre-execution: lanes × conflict-rate sweep")
		oramSweep   = flag.Bool("oram", false, "sharded ORAM fan-out: shards × batch-size sweep, modeled + measured")
		traceSweep  = flag.Bool("trace", false, "distributed-tracing overhead: disabled vs flight-recorder wall time on the bundle path")
		shards      = flag.Int("shards", 8, "maximum shard count for the -oram sweep (powers of two up to this)")
		scaleN      = flag.Int("scale-sessions", 10000, "session count for the -sessions gateway stampede")
		telem       = flag.Bool("telemetry", false, "drive an instrumented -full pipeline and dump the registry JSON snapshot on stdout")
		asJSON      = flag.Bool("json", false, "emit results as JSON on stdout (progress goes to stderr)")
		n           = flag.Int("n", 100, "transactions per experiment")
		seed        = flag.Int64("seed", 19145194, "workload seed (paper's first block number)")
		eoas        = flag.Int("eoas", 24, "synthetic EOA count")
		tokens      = flag.Int("tokens", 4, "ERC-20 token count")
		dexes       = flag.Int("dexes", 2, "DEX pool count")
		hevms       = flag.Int("hevms", 3, "HEVM cores per device")
	)
	flag.Parse()

	if *all {
		*table1, *fig4, *fig5, *correctness, *scalability, *resources, *ablations, *interp, *sessions, *parallel, *oramSweep, *traceSweep =
			true, true, true, true, true, true, true, true, true, true, true, true
	}
	if *telem {
		// Telemetry mode is its own run: stdout carries exactly the
		// registry snapshot (the same document /metrics.json serves).
		return runTelemetry(*n, *seed, *eoas, *tokens, *dexes, *hevms)
	}
	if !(*table1 || *fig4 || *fig5 || *correctness || *scalability || *resources || *ablations || *interp || *sessions || *parallel || *oramSweep || *traceSweep) {
		flag.Usage()
		return fmt.Errorf("no experiment selected (try -all)")
	}

	// In -json mode stdout carries exactly one JSON document; progress
	// and human-readable banners move to stderr.
	progress := os.Stdout
	if *asJSON {
		progress = os.Stderr
	}
	fmt.Fprintf(progress, "Building evaluation environment (seed %d: %d EOAs, %d tokens, %d DEX pools)...\n\n",
		*seed, *eoas, *tokens, *dexes)
	env, err := bench.NewEnv(bench.EnvConfig{
		Seed: *seed, EOAs: *eoas, Tokens: *tokens, DEXes: *dexes, HEVMs: *hevms,
	})
	if err != nil {
		return err
	}

	section := func(body string) {
		if *asJSON {
			return
		}
		fmt.Println(body)
		fmt.Println("────────────────────────────────────────────────────────────")
	}

	report := jsonReport{Seed: *seed, N: *n}

	if *table1 {
		out, err := bench.TableI(env, *n)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		report.TableI = out
		section(out)
	}
	if *resources {
		rep := bench.Resources(hevm.DefaultConfig(), 30)
		report.Resources = rep
		section(rep.Render())
	}
	if *correctness {
		rep, err := bench.Correctness(env, *n)
		if err != nil {
			return fmt.Errorf("correctness: %w", err)
		}
		report.Correctness = rep
		section(rep.Render())
	}
	if *fig4 {
		rows, err := bench.Fig4(env, *n)
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		report.Fig4 = rows
		section(bench.RenderFig4(rows))
	}
	if *fig5 {
		rows, err := bench.Fig5(env)
		if err != nil {
			return fmt.Errorf("fig5: %w", err)
		}
		report.Fig5 = rows
		section(bench.RenderFig5(rows))
	}
	if *fig4 {
		rows, err := bench.Amortization(env, []int{1, 2, 4, 8, 16})
		if err != nil {
			return fmt.Errorf("amortization: %w", err)
		}
		report.Amortization = rows
		section(bench.RenderAmortization(rows))
	}
	if *scalability {
		rep, err := bench.Scalability(env, *n/4+1)
		if err != nil {
			return fmt.Errorf("scalability: %w", err)
		}
		report.Scalability = rep
		section(rep.Render())
	}
	if *interp {
		rows, err := bench.InterpFastPath(env)
		if err != nil {
			return fmt.Errorf("interp: %w", err)
		}
		report.Interp = rows
		section(bench.RenderInterp(rows))
	}
	if *ablations {
		noise, err := bench.RunNoiseAblation()
		if err != nil {
			return fmt.Errorf("ablation noise: %w", err)
		}
		section(noise.Render())
		prefetch, err := bench.RunPrefetchAblation(env)
		if err != nil {
			return fmt.Errorf("ablation prefetch: %w", err)
		}
		section(prefetch.Render())
		grouping, err := bench.RunGroupingAblation()
		if err != nil {
			return fmt.Errorf("ablation grouping: %w", err)
		}
		section(grouping.Render())
		depth, err := bench.RunDepthAblation()
		if err != nil {
			return fmt.Errorf("ablation depth: %w", err)
		}
		section(depth.Render())
		report.Ablations = &jsonAblations{
			Noise: noise, Prefetch: prefetch, Grouping: grouping, Depth: depth,
		}
	}

	if *sessions {
		rep, err := bench.Sessions(env, *n)
		if err != nil {
			return fmt.Errorf("sessions: %w", err)
		}
		report.Sessions = rep
		section(rep.Render())
		scale, err := bench.SessionScale(env, *scaleN, 64)
		if err != nil {
			return fmt.Errorf("session scale: %w", err)
		}
		report.SessionScale = scale
		section(scale.Render())
	}

	if *parallel {
		txs := 16
		if txs > *eoas {
			txs = *eoas
		}
		rep, err := bench.ParallelSweep(env, txs, nil, nil)
		if err != nil {
			return fmt.Errorf("parallel: %w", err)
		}
		report.Parallel = rep
		section(rep.Render())
	}

	if *oramSweep {
		rep, err := bench.ORAMShardSweep(*shards, []int{8, 32}, 16)
		if err != nil {
			return fmt.Errorf("oram sweep: %w", err)
		}
		report.ORAM = rep
		section(rep.Render())
	}

	if *traceSweep {
		rep, err := bench.TraceSweep(env, 16, 8)
		if err != nil {
			return fmt.Errorf("trace sweep: %w", err)
		}
		report.Trace = rep
		section(rep.Render())
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	return nil
}

// runTelemetry drives n transactions through a fully instrumented
// -full pipeline — attestation, DHKE, sealed bundles, ORAM-backed
// world state — and writes the telemetry registry's JSON snapshot to
// stdout. It is the same document the admin endpoint's /metrics.json
// serves, so dashboards and CI artifacts share one schema.
func runTelemetry(n int, seed int64, eoas, tokens, dexes, hevms int) error {
	reg := hardtape.NewTelemetry()
	opts := hardtape.DefaultTestbedOptions()
	opts.Seed = seed
	opts.EOAs = eoas
	opts.Tokens = tokens
	opts.DEXes = dexes
	opts.HEVMs = hevms
	opts.Features = hardtape.ConfigFull
	opts.Telemetry = reg

	fmt.Fprintf(os.Stderr, "Building instrumented -full testbed (seed %d)...\n", seed)
	tb, err := hardtape.NewTestbed(opts)
	if err != nil {
		return err
	}
	svc := hardtape.NewService(tb.Device)
	userConn, spConn := net.Pipe()
	defer userConn.Close()
	go func() {
		defer spConn.Close()
		//hardtape:faulterr-ok the session ends when the driver closes the pipe; its EOF is the shutdown signal
		_ = svc.ServeConn(spConn)
	}()
	client, err := hardtape.Dial(userConn, tb.Verifier(), true)
	if err != nil {
		return err
	}

	// One 4-tx bundle per EOA, replayed until n transactions ran
	// (pre-execution never commits, so replays stay valid).
	const txsPerBundle = 4
	token := tb.World.Tokens[0]
	eoaList := tb.World.EOAs
	bundles := make([]*types.Bundle, len(eoaList))
	for i := range bundles {
		txs := make([]*types.Transaction, txsPerBundle)
		for j := range txs {
			tx, err := tb.World.SignedTxAt(eoaList[i], uint64(j), &token, 0,
				workload.CalldataTransfer(eoaList[(i+1)%len(eoaList)], 7), 200_000)
			if err != nil {
				return err
			}
			txs[j] = tx
		}
		bundles[i] = &types.Bundle{Txs: txs}
	}
	ran := 0
	for i := 0; ran < n; i++ {
		res, err := client.PreExecute(bundles[i%len(bundles)])
		if err != nil {
			return fmt.Errorf("bundle %d: %w", i, err)
		}
		if res.AbortReason != "" {
			return fmt.Errorf("bundle %d aborted: %s", i, res.AbortReason)
		}
		ran += txsPerBundle
	}
	fmt.Fprintf(os.Stderr, "Pre-executed %d txs; dumping registry snapshot\n", ran)
	return reg.WriteJSON(os.Stdout)
}
