// hardtape-lint runs the HarDTAPE invariant analyzers — the syntactic
// checks (cryptorand, consttime, oramleak, locksafe, faulterr,
// telemetrysafe) and the dataflow-powered ones (secretflow, poolsafe)
// — over the repository.
//
// Two modes:
//
//	hardtape-lint [packages]          standalone driver (default ./...)
//	go vet -vettool=$(which hardtape-lint) ./...
//
// The second form speaks cmd/go's unitchecker protocol: go vet
// compiles each package, writes a *.cfg describing its files and the
// export data of its dependencies, and invokes this binary once per
// package. Both modes type-check from compiler export data, so a
// full-repo run costs one build plus parsing.
//
// The standalone mode accepts -report=<file> to write a JSON audit
// artifact: every finding (analyzer, position, message) plus every
// //hardtape: waiver in the linted packages (directive, position,
// reason), so CI can archive exactly what was flagged and what was
// deliberately accepted.
//
// Exit status: 0 clean, 1 tool error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"hardtape/internal/analysis"
	"hardtape/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			printVersion()
			return
		case "-flags":
			printFlags()
			return
		}
	}

	enabled, patterns, jsonOut, reportPath := parseArgs(args)
	analyzers := selectAnalyzers(enabled)

	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		os.Exit(runUnitchecker(patterns[0], analyzers, jsonOut))
	}
	os.Exit(runStandalone(patterns, analyzers, reportPath))
}

// printVersion answers `hardtape-lint -V=full`, the handshake cmd/go
// uses to fingerprint a vet tool for its build cache. The build ID
// must change when the tool changes, so hash the executable.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Println("hardtape-lint version devel")
		return
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Printf("%s version devel\n", exe)
		return
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, sum[:16])
}

// printFlags answers `hardtape-lint -flags`: the JSON flag inventory
// cmd/go queries to validate vet command lines.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range suite.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	_ = json.NewEncoder(os.Stdout).Encode(flags)
}

// parseArgs splits analyzer enable flags from package patterns / the
// unitchecker cfg path.
func parseArgs(args []string) (enabled map[string]bool, rest []string, jsonOut bool, reportPath string) {
	known := make(map[string]bool)
	for _, a := range suite.Analyzers() {
		known[a.Name] = true
	}
	enabled = make(map[string]bool)
	for _, arg := range args {
		if !strings.HasPrefix(arg, "-") {
			rest = append(rest, arg)
			continue
		}
		name := strings.TrimLeft(arg, "-")
		value := true
		raw := ""
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			raw = name[eq+1:]
			value = raw == "true"
			name = name[:eq]
		}
		switch {
		case name == "json":
			jsonOut = true
		case name == "report":
			if raw == "" {
				fmt.Fprintln(os.Stderr, "hardtape-lint: -report requires =<file>")
				os.Exit(1)
			}
			reportPath = raw
		case known[name]:
			enabled[name] = value
		default:
			fmt.Fprintf(os.Stderr, "hardtape-lint: unknown flag %s\n", arg)
			os.Exit(1)
		}
	}
	return enabled, rest, jsonOut, reportPath
}

// selectAnalyzers narrows the suite to explicitly enabled analyzers;
// with no enable flags the whole suite runs.
func selectAnalyzers(enabled map[string]bool) []*analysis.Analyzer {
	all := suite.Analyzers()
	anyOn := false
	for _, on := range enabled {
		if on {
			anyOn = true
		}
	}
	if !anyOn {
		return all
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// reportFinding is one diagnostic in the -report JSON artifact.
type reportFinding struct {
	Analyzer string `json:"analyzer"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

// reportWaiver is one //hardtape: directive in the -report artifact:
// a finding that was deliberately accepted rather than fixed.
type reportWaiver struct {
	Directive string `json:"directive"`
	Position  string `json:"position"`
	Reason    string `json:"reason"`
}

// lintReport is the -report schema. Findings are what the analyzers
// flagged on this run; waivers are what the codebase has declared
// acceptable, so the artifact records both halves of the audit.
type lintReport struct {
	Findings []reportFinding `json:"findings"`
	Waivers  []reportWaiver  `json:"waivers"`
}

// runStandalone lints package patterns in the current module.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, reportPath string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hardtape-lint: %v\n", err)
		return 1
	}
	pkgs, err := analysis.LoadModulePackages(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hardtape-lint: %v\n", err)
		return 1
	}
	report := lintReport{Findings: []reportFinding{}, Waivers: []reportWaiver{}}
	// Repo-relative positions keep the artifact stable across runners.
	rel := func(pos string) string { return strings.TrimPrefix(pos, cwd+string(os.PathSeparator)) }
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hardtape-lint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			pos := d.Position(pkg.Fset)
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Category, d.Message)
			report.Findings = append(report.Findings, reportFinding{
				Analyzer: d.Category,
				Position: rel(pos.String()),
				Message:  d.Message,
			})
		}
		for _, file := range pkg.Files {
			for _, dir := range analysis.AllDirectives(pkg.Fset, file) {
				report.Waivers = append(report.Waivers, reportWaiver{
					Directive: dir.Name,
					Position:  rel(dir.Position.String()),
					Reason:    dir.Reason,
				})
			}
		}
	}
	if reportPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(reportPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hardtape-lint: write report: %v\n", err)
			return 1
		}
	}
	if n := len(report.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "hardtape-lint: %d finding(s)\n", n)
		return 2
	}
	return 0
}
