package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"hardtape/internal/analysis"
)

// vetConfig is the unitchecker protocol's per-package description,
// written by cmd/go into $WORK/vet.cfg. Field names and semantics
// follow golang.org/x/tools/go/analysis/unitchecker.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one compilation unit described by cfgFile.
func runUnitchecker(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hardtape-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hardtape-lint: parse %s: %v\n", cfgFile, err)
		return 1
	}

	// We compute no cross-package facts, but cmd/go requires the
	// output file to exist for its action cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hardtape-lint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hardtape-lint: write vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	var filenames []string
	for _, gf := range cfg.GoFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		filenames = append(filenames, gf)
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, fset, filenames, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hardtape-lint: %v\n", err)
		return 1
	}

	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hardtape-lint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		return printJSON(&cfg, pkg, diags)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position(pkg.Fset), d.Category, d.Message)
	}
	return 2
}

// printJSON emits the unitchecker JSON shape:
// {pkgID: {analyzer: [{posn, message}]}}.
func printJSON(cfg *vetConfig, pkg *analysis.Package, diags []analysis.Diagnostic) int {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Category] = append(byAnalyzer[d.Category], jsonDiag{
			Posn:    d.Position(pkg.Fset).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	_ = enc.Encode(out)
	return 2
}
