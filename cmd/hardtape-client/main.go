// Command hardtape-client is the user side of the pre-execution
// service: it connects to a hardtape server, verifies remote
// attestation against the manufacturer credential, establishes the
// secure channel, and pre-executes a demo bundle, printing the trace.
//
//	hardtape-client -addr 127.0.0.1:7337 -credentials mfr.pub -action swap
//
// The demo world is deterministic in -seed; use the server's seed so
// locally constructed transactions are valid against its state.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"hardtape"
	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hardtape-client: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7337", "service address")
		credFile = flag.String("credentials", "mfr.pub", "manufacturer public key file")
		seed     = flag.Int64("seed", 19145194, "world seed (must match the server)")
		eoas     = flag.Int("eoas", 16, "synthetic EOAs (must match the server)")
		tokens   = flag.Int("tokens", 3, "tokens (must match the server)")
		dexes    = flag.Int("dexes", 2, "DEX pools (must match the server)")
		action   = flag.String("action", "transfer", "bundle to pre-execute: transfer|swap|deep")
		sign     = flag.Bool("sign", true, "use the -ES signature layer (match server config)")
		status   = flag.Bool("status", false, "probe live occupancy (free HEVM slots) instead of executing")
		repeat   = flag.Int("repeat", 1, "submit the bundle this many times (fleet load demo)")
		resumes  = flag.Int("resumes", 0, "after the cold dial, resume the session this many times via ticket (requires -sign=false)")
		parallel = flag.Int("parallel", 1, "submit the bundle from this many goroutines at once over the multiplexed session")
	)
	flag.Parse()

	if *resumes > 0 && *sign {
		return fmt.Errorf("-resumes requires -sign=false: resumed channels never carry the per-bundle signature layer")
	}

	credHex, err := os.ReadFile(*credFile)
	if err != nil {
		return fmt.Errorf("read credentials: %w", err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(credHex)))
	if err != nil {
		return fmt.Errorf("decode credentials: %w", err)
	}
	verifier, err := hardtape.NewVerifierForKey(raw)
	if err != nil {
		return err
	}

	// Rebuild the deterministic demo world to construct valid txs.
	world, err := workload.BuildWorld(workload.Config{
		Seed: *seed, EOAs: *eoas, Tokens: *tokens, DEXes: *dexes,
	})
	if err != nil {
		return err
	}

	bundle, describe, err := buildBundle(world, *action)
	if err != nil {
		return err
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	fmt.Printf("Attesting device at %s...\n", *addr)
	client, err := hardtape.Dial(conn, verifier, *sign)
	if err != nil {
		return fmt.Errorf("attestation: %w", err)
	}
	fmt.Println("Attestation OK — secure channel established.")

	if *status {
		st, err := client.Status()
		if err != nil {
			return err
		}
		fmt.Printf("Occupancy: %d of %d HEVM slots free\n", st.FreeSlots, st.Capacity)
		return nil
	}

	fmt.Printf("Pre-executing: %s\n\n", describe)

	if *parallel > 1 {
		// All submissions interleave on the one secure channel; the mux
		// matches replies by request id.
		var wg sync.WaitGroup
		errs := make(chan error, *parallel)
		for i := 0; i < *parallel; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := client.PreExecute(bundle)
				if err != nil {
					errs <- fmt.Errorf("parallel submission %d: %w", i+1, err)
					return
				}
				fmt.Printf("parallel submission %d/%d: device time %v\n", i+1, *parallel, r.VirtualTime)
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
	}

	var res *hardtape.TraceResult
	for i := 0; i < *repeat; i++ {
		res, err = client.PreExecute(bundle)
		if err != nil {
			return fmt.Errorf("submission %d: %w", i+1, err)
		}
		if *repeat > 1 {
			fmt.Printf("submission %d/%d: device time %v\n", i+1, *repeat, res.VirtualTime)
		}
	}

	// Ticket-resume sweep: tear the connection down and come back warm,
	// re-running the bundle on each resumed session. Each resume consumes
	// its ticket and harvests the rotated successor.
	for i := 0; i < *resumes; i++ {
		ticket := client.Ticket()
		if ticket == nil {
			return fmt.Errorf("resume %d: no resumption ticket held (server declined to mint one?)", i+1)
		}
		client.Close()
		conn.Close()
		if conn, err = net.Dial("tcp", *addr); err != nil {
			return err
		}
		start := time.Now()
		client, err = hardtape.Resume(conn, ticket)
		if err != nil {
			return fmt.Errorf("resume %d: %w", i+1, err)
		}
		warmTime := time.Since(start)
		r, err := client.PreExecute(bundle)
		if err != nil {
			return fmt.Errorf("resume %d submission: %w", i+1, err)
		}
		fmt.Printf("resume %d/%d: warm handshake %v (no asymmetric crypto), device time %v\n",
			i+1, *resumes, warmTime, r.VirtualTime)
		res = r
	}
	if res.AbortReason != "" {
		fmt.Printf("Bundle ABORTED: %s\n", res.AbortReason)
		return nil
	}
	for i, tx := range res.Trace.Txs {
		status := "success"
		if tx.Reverted {
			status = "REVERTED"
		}
		if tx.Failed {
			status = "FAILED"
		}
		fmt.Printf("tx %d: %s, gas %d, %d frames, max depth %d\n",
			i, status, tx.GasUsed, len(tx.Calls), tx.MaxCallDepth)
		if len(tx.ReturnData) > 0 {
			fmt.Printf("  return: %s\n", new(uint256.Int).SetBytes(tx.ReturnData))
		}
		for _, c := range tx.Calls {
			fmt.Printf("  %s %s → %s (gas used %d)\n", c.Kind, c.From, c.To, c.GasUsed)
		}
		for _, s := range tx.Storage {
			op := "read "
			if s.Write {
				op = "write"
			}
			fmt.Printf("  storage %s %s[%s]\n", op, s.Address, s.Slot)
		}
	}
	fmt.Printf("\ndevice time (virtual): %v, total gas: %d\n", res.VirtualTime, res.GasUsed)
	return nil
}

func buildBundle(world *workload.World, action string) (*hardtape.Bundle, string, error) {
	from := world.EOAs[0]
	switch action {
	case "transfer":
		token := world.Tokens[0]
		tx, err := world.SignedTxAt(from, 0, &token, 0,
			workload.CalldataTransfer(world.EOAs[1], 1000), 200_000)
		if err != nil {
			return nil, "", err
		}
		return &hardtape.Bundle{Txs: []*hardtape.Transaction{tx}},
			fmt.Sprintf("ERC-20 transfer of 1000 units on token %s", token), nil
	case "swap":
		dex := world.DEXes[0]
		tx, err := world.SignedTxAt(from, 0, &dex, 0, workload.CalldataSwap(5000), 400_000)
		if err != nil {
			return nil, "", err
		}
		return &hardtape.Bundle{Txs: []*hardtape.Transaction{tx}},
			fmt.Sprintf("constant-product swap of 5000 units on DEX %s", dex), nil
	case "deep":
		dc := world.DeepCaller
		tx, err := world.SignedTxAt(from, 0, &dc, 0, workload.CalldataUint(6), 2_000_000)
		if err != nil {
			return nil, "", err
		}
		return &hardtape.Bundle{Txs: []*hardtape.Transaction{tx}},
			"depth-7 recursive call chain", nil
	default:
		return nil, "", fmt.Errorf("unknown action %q (transfer|swap|deep)", action)
	}
}
