package hardtape

import (
	"net"
	"testing"

	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

func TestTestbedQuickstartFlow(t *testing.T) {
	opts := DefaultTestbedOptions()
	opts.EOAs = 8
	opts.Tokens = 2
	opts.DEXes = 1
	opts.HEVMs = 2
	tb, err := NewTestbed(opts)
	if err != nil {
		t.Fatal(err)
	}

	// The full user flow over an in-process pipe.
	userConn, spConn := net.Pipe()
	defer userConn.Close()
	svc := NewService(tb.Device)
	go func() {
		defer spConn.Close()
		_ = svc.ServeConn(spConn)
	}()

	client, err := Dial(userConn, tb.Verifier(), true)
	if err != nil {
		t.Fatal(err)
	}

	token := tb.World.Tokens[0]
	tx, err := tb.World.SignedTxAt(tb.World.EOAs[0], 0, &token, 0,
		workload.CalldataTransfer(tb.World.EOAs[1], 10), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.PreExecute(&Bundle{Txs: []*Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortReason != "" {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	if len(res.Trace.Txs) != 1 || res.Trace.Txs[0].Reverted {
		t.Fatalf("bad trace: %+v", res.Trace)
	}
	if got := new(uint256.Int).SetBytes(res.Trace.Txs[0].ReturnData); !got.Eq(uint256.NewInt(1)) {
		t.Fatalf("transfer returned %s", got)
	}
}

func TestDirectDeviceExecution(t *testing.T) {
	opts := DefaultTestbedOptions()
	opts.EOAs = 6
	opts.Tokens = 1
	opts.DEXes = 1
	opts.Features = ConfigRaw
	opts.HEVMs = 1
	tb, err := NewTestbed(opts)
	if err != nil {
		t.Fatal(err)
	}
	to := tb.World.EOAs[1]
	tx, err := tb.World.SignedTxAt(tb.World.EOAs[0], 0, &to, 42, nil, 21_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Device.Execute(&Bundle{Txs: []*Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.GasUsed != 21000 {
		t.Fatalf("gas = %d", res.GasUsed)
	}
}

func TestConfigNames(t *testing.T) {
	for cfg, want := range map[Features]string{
		ConfigRaw: "-raw", ConfigE: "-E", ConfigES: "-ES",
		ConfigESO: "-ESO", ConfigFull: "-full",
	} {
		if cfg.Name() != want {
			t.Errorf("Name() = %s, want %s", cfg.Name(), want)
		}
	}
}
