module hardtape

go 1.22
