// Benchmarks regenerating the paper's tables and figures as testing.B
// targets. Each benchmark measures the real wall-clock cost of our
// software implementation of the corresponding experiment; the
// virtual-clock (paper-calibrated) numbers come from cmd/benchtab.
package hardtape

import (
	"context"
	"net"
	"sync"
	"testing"

	"hardtape/internal/attest"
	"hardtape/internal/bench"
	"hardtape/internal/core"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

var (
	_benchEnvOnce sync.Once
	_benchEnv     *bench.Env
	_benchEnvErr  error
)

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	_benchEnvOnce.Do(func() {
		cfg := bench.DefaultEnvConfig()
		cfg.EOAs = 16
		cfg.Tokens = 3
		cfg.DEXes = 2
		cfg.HEVMs = 3
		_benchEnv, _benchEnvErr = bench.NewEnv(cfg)
	})
	if _benchEnvErr != nil {
		b.Fatal(_benchEnvErr)
	}
	return _benchEnv
}

// benchBundles pre-builds n single-tx evaluation bundles.
func benchBundles(b *testing.B, env *bench.Env, n int) []*types.Bundle {
	b.Helper()
	bundles, err := env.EvalBundles(n)
	if err != nil {
		b.Fatal(err)
	}
	return bundles
}

// --- Table I ---

// BenchmarkTableI measures the evaluation-set generation + statistics
// pipeline that reproduces Table I.
func BenchmarkTableI(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TableI(env, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 4: one benchmark per bar ---

func benchmarkConfig(b *testing.B, name string) {
	env := benchEnv(b)
	bundles := benchBundles(b, env, 16)
	dev := env.Devices[name]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dev.Execute(bundles[i%len(bundles)])
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkFig4Geth is the unprotected software baseline bar.
func BenchmarkFig4Geth(b *testing.B) {
	env := benchEnv(b)
	bundles := benchBundles(b, env, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Geth.ExecuteBundle(bundles[i%len(bundles)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Raw .. BenchmarkFig4Full are HarDTAPE's bars.
func BenchmarkFig4Raw(b *testing.B)  { benchmarkConfig(b, "-raw") }
func BenchmarkFig4E(b *testing.B)    { benchmarkConfig(b, "-E") }
func BenchmarkFig4ES(b *testing.B)   { benchmarkConfig(b, "-ES") }
func BenchmarkFig4ESO(b *testing.B)  { benchmarkConfig(b, "-ESO") }
func BenchmarkFig4Full(b *testing.B) { benchmarkConfig(b, "-full") }

// --- Fig. 5: warm local execution per platform ---

// BenchmarkFig5 regenerates the whole per-operation comparison.
func BenchmarkFig5(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §VI-B correctness ---

// BenchmarkCorrectness measures the trace-vs-ground-truth pipeline.
func BenchmarkCorrectness(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := bench.Correctness(env, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Mismatches) != 0 {
			b.Fatalf("mismatches: %v", rep.Mismatches)
		}
	}
}

// --- §VI-D scalability ---

// BenchmarkScalability measures the full scalability estimation run
// (including the real software-ORAM per-query measurement).
func BenchmarkScalability(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Scalability(env, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- bundle throughput through core.Service ---

// BenchmarkBundleThroughput drives multi-tx bundles through the full
// service path — secure-channel framing, per-tx execution on the
// device's HEVMs, trace assembly — and reports txs/sec. ConfigRaw
// keeps crypto and ORAM out of the way so the number tracks the
// interpreter fast path (ISSUE 4); gas/crypto-heavy variants live in
// the Fig. 4 benchmarks. The sequential/lanes-4 sub-benchmarks execute
// conflict-free bundles directly on one HEVM with the optimistic
// scheduler off and on: the modeled-speedup-x metric (virtual-clock
// ratio, host-core independent) is the ISSUE 8 ≥3x acceptance figure.
func BenchmarkBundleThroughput(b *testing.B) {
	b.Run("service", benchmarkServiceThroughput)
	b.Run("sequential", func(b *testing.B) { benchmarkLanes(b, 0) })
	b.Run("lanes-4", func(b *testing.B) { benchmarkLanes(b, 4) })
}

func benchmarkServiceThroughput(b *testing.B) {
	opts := DefaultTestbedOptions()
	opts.Features = ConfigRaw
	opts.HEVMs = 3
	tb, err := NewTestbed(opts)
	if err != nil {
		b.Fatal(err)
	}
	svc := NewService(tb.Device)

	userConn, spConn := net.Pipe()
	defer userConn.Close()
	go func() {
		defer spConn.Close()
		_ = svc.ServeConn(spConn)
	}()
	client, err := Dial(userConn, tb.Verifier(), false)
	if err != nil {
		b.Fatal(err)
	}

	// One bundle per EOA, each carrying txsPerBundle transfers from
	// the same sender (consecutive nonces); pre-execution never
	// commits, so the bundles replay indefinitely.
	const txsPerBundle = 8
	token := tb.World.Tokens[0]
	eoas := tb.World.EOAs
	bundles := make([]*types.Bundle, len(eoas))
	for i := range bundles {
		txs := make([]*types.Transaction, txsPerBundle)
		for j := range txs {
			tx, err := tb.World.SignedTxAt(eoas[i], uint64(j), &token, 0,
				workload.CalldataTransfer(eoas[(i+1)%len(eoas)], 7), 200_000)
			if err != nil {
				b.Fatal(err)
			}
			txs[j] = tx
		}
		bundles[i] = &types.Bundle{Txs: txs}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.PreExecute(bundles[i%len(bundles)])
		if err != nil {
			b.Fatal(err)
		}
		if res.AbortReason != "" {
			b.Fatalf("bundle aborted: %s", res.AbortReason)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*txsPerBundle)/b.Elapsed().Seconds(), "txs/sec")
}

// benchmarkLanes executes one 16-tx conflict-free uniform bundle
// (equal-cost arithmetic loops from distinct senders) on a single
// ConfigRaw HEVM with the given speculative-lane count. Reported
// metrics: wall txs/sec, the modeled per-bundle latency
// (virtual-ns/bundle), and — when lanes > 1 — modeled-speedup-x
// against a sequential device on the same bundle. The speedup rides
// the virtual lane clock, not wall time, so it is independent of how
// many host cores the benchmark machine has.
func benchmarkLanes(b *testing.B, lanes int) {
	const txsPerBundle = 16
	mk := func(lanes int) *Testbed {
		opts := DefaultTestbedOptions()
		opts.Features = ConfigRaw
		opts.HEVMs = 1
		opts.Lanes = lanes
		tb, err := NewTestbed(opts)
		if err != nil {
			b.Fatal(err)
		}
		return tb
	}
	tb := mk(lanes)
	txs := make([]*types.Transaction, txsPerBundle)
	for i := range txs {
		to := tb.World.ArithLoop
		tx, err := tb.World.SignedTxAt(tb.World.EOAs[i], 0, &to, 0,
			workload.CalldataUint(2000), 2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		txs[i] = tx
	}
	bundle := &types.Bundle{Txs: txs}

	res, err := tb.Device.Execute(bundle)
	if err != nil {
		b.Fatal(err)
	}
	speedup := 0.0
	if lanes > 1 {
		if res.Parallel == nil {
			b.Fatal("parallel device reported no scheduler stats")
		}
		if res.Parallel.Conflicts != 0 {
			b.Fatalf("conflict-free bundle reported %d conflicts", res.Parallel.Conflicts)
		}
		seqRes, err := mk(0).Device.Execute(bundle)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(seqRes.VirtualTime) / float64(res.VirtualTime)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tb.Device.Execute(bundle)
		if err != nil {
			b.Fatal(err)
		}
		if res.Aborted != nil {
			b.Fatalf("bundle aborted: %v", res.Aborted)
		}
	}
	b.StopTimer()
	// ResetTimer discards earlier user metrics, so report after the loop.
	if lanes > 1 {
		b.ReportMetric(speedup, "modeled-speedup-x")
	}
	b.ReportMetric(float64(res.VirtualTime.Nanoseconds()), "virtual-ns/bundle")
	b.ReportMetric(float64(b.N*txsPerBundle)/b.Elapsed().Seconds(), "txs/sec")
}

// BenchmarkBundleThroughputTelemetry is BenchmarkBundleThroughput with
// a live registry: compare allocs/op and txs/sec between the two to
// read off the enabled-telemetry overhead (the disabled case is
// BenchmarkBundleThroughput itself — telemetry off is the default and
// must cost nothing, which TestDisabledZeroAllocs pins per-call).
func BenchmarkBundleThroughputTelemetry(b *testing.B) {
	opts := DefaultTestbedOptions()
	opts.Features = ConfigRaw
	opts.HEVMs = 3
	opts.Telemetry = NewTelemetry()
	tb, err := NewTestbed(opts)
	if err != nil {
		b.Fatal(err)
	}
	svc := NewService(tb.Device)

	userConn, spConn := net.Pipe()
	defer userConn.Close()
	go func() {
		defer spConn.Close()
		_ = svc.ServeConn(spConn)
	}()
	client, err := Dial(userConn, tb.Verifier(), false)
	if err != nil {
		b.Fatal(err)
	}

	const txsPerBundle = 8
	token := tb.World.Tokens[0]
	eoas := tb.World.EOAs
	bundles := make([]*types.Bundle, len(eoas))
	for i := range bundles {
		txs := make([]*types.Transaction, txsPerBundle)
		for j := range txs {
			tx, err := tb.World.SignedTxAt(eoas[i], uint64(j), &token, 0,
				workload.CalldataTransfer(eoas[(i+1)%len(eoas)], 7), 200_000)
			if err != nil {
				b.Fatal(err)
			}
			txs[j] = tx
		}
		bundles[i] = &types.Bundle{Txs: txs}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.PreExecute(bundles[i%len(bundles)])
		if err != nil {
			b.Fatal(err)
		}
		if res.AbortReason != "" {
			b.Fatalf("bundle aborted: %s", res.AbortReason)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*txsPerBundle)/b.Elapsed().Seconds(), "txs/sec")
}

// --- fleet gateway ---

// BenchmarkGatewayThroughput measures parallel bundle throughput
// through the fleet gateway fronting 3 devices (3 HEVMs each): the
// admission/dispatch overhead on top of raw device execution.
func BenchmarkGatewayThroughput(b *testing.B) {
	opts := DefaultTestbedOptions()
	opts.Features = ConfigRaw // scheduling, not crypto, is under test
	opts.HEVMs = 3
	fcfg := DefaultFleetConfig()
	fcfg.QueueDepth = 4096 // saturate, don't backpressure
	ftb, err := NewFleetTestbed(opts, 3, fcfg)
	if err != nil {
		b.Fatal(err)
	}
	defer ftb.Gateway.Close()

	token := ftb.World.Tokens[0]
	bundles := make([]*types.Bundle, len(ftb.World.EOAs))
	for i := range bundles {
		tx, err := ftb.World.SignedTxAt(ftb.World.EOAs[i], 0, &token, 0,
			workload.CalldataTransfer(ftb.World.EOAs[(i+1)%len(ftb.World.EOAs)], 7), 200_000)
		if err != nil {
			b.Fatal(err)
		}
		bundles[i] = &types.Bundle{Txs: []*types.Transaction{tx}}
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := ftb.Gateway.Submit(context.Background(), bundles[i%len(bundles)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// --- workload generation itself ---

// BenchmarkEvalSetGeneration measures synthetic block production.
func BenchmarkEvalSetGeneration(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.EOAs = 16
	cfg.Tokens = 2
	cfg.DEXes = 1
	w, err := workload.BuildWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.GenerateBlock(uint64(i+1), types.Hash{}, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- session resumption ---

// BenchmarkSessionResume pits the full attested dial (ECDSA + DHKE +
// certificate chain) against the ticket resume (AES-GCM only). The
// warm path's entire point is the gap between these two numbers.
func BenchmarkSessionResume(b *testing.B) {
	env := benchEnv(b)
	mfr, err := attest.NewManufacturer()
	if err != nil {
		b.Fatal(err)
	}
	dcfg := core.DefaultConfig()
	dcfg.Features = core.ConfigE // resumes never carry the -ES layer
	dev, err := core.NewDevice(dcfg, mfr, env.Chain)
	if err != nil {
		b.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		b.Fatal(err)
	}
	svc := core.NewService(dev)
	verifier := attest.NewVerifier(mfr.PublicKey(), core.ImageMeasurement())
	serve := func() net.Conn {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			_ = svc.ServeConn(server)
		}()
		return client
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			conn := serve()
			c, err := core.Dial(conn, verifier, false)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			c.Close()
			conn.Close()
			b.StartTimer()
		}
	})

	b.Run("warm", func(b *testing.B) {
		conn := serve()
		c, err := core.Dial(conn, verifier, false)
		if err != nil {
			b.Fatal(err)
		}
		ticket := c.Ticket()
		c.Close()
		conn.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conn := serve()
			c, err := core.Resume(conn, ticket)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			ticket = c.Ticket()
			c.Close()
			conn.Close()
			if ticket == nil {
				b.Fatal("resume minted no successor ticket")
			}
			b.StartTimer()
		}
	})
}
